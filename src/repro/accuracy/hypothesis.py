"""Hypothesis-test primitives (Q2).

Thin, explicit wrappers that always return a :class:`TestResult` — the
"meta-information on the accuracy of the output" the paper demands is the
whole result object, not a bare boolean.  The permutation test is the
workhorse: exact in distribution, assumption-light, and reproducible via
an explicit generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats

from repro.exceptions import DataError


@dataclass(frozen=True)
class TestResult:
    """Outcome of one hypothesis test."""

    name: str
    statistic: float
    p_value: float
    n: int
    detail: str = ""

    def significant(self, alpha: float = 0.05) -> bool:
        """Reject the null at level ``alpha``?  (Uncorrected — see
        :mod:`repro.accuracy.multiple_testing` before trusting a scan.)"""
        return self.p_value < alpha


def _check_sample(values, name: str = "sample") -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or len(values) < 2:
        raise DataError(f"{name} must be a 1-D array with at least 2 values")
    return values


def two_sample_t_test(a, b) -> TestResult:
    """Welch's t-test for a difference in means."""
    a, b = _check_sample(a, "a"), _check_sample(b, "b")
    statistic, p_value = stats.ttest_ind(a, b, equal_var=False)
    return TestResult(
        name="welch_t", statistic=float(statistic), p_value=float(p_value),
        n=len(a) + len(b),
        detail=f"mean difference = {a.mean() - b.mean():.4g}",
    )


def correlation_test(x, y) -> TestResult:
    """Pearson correlation with its two-sided p-value."""
    x, y = _check_sample(x, "x"), _check_sample(y, "y")
    if len(x) != len(y):
        raise DataError("x and y must be the same length")
    if np.std(x) == 0 or np.std(y) == 0:
        return TestResult(name="pearson", statistic=0.0, p_value=1.0, n=len(x),
                          detail="degenerate: zero variance")
    r, p_value = stats.pearsonr(x, y)
    return TestResult(
        name="pearson", statistic=float(r), p_value=float(p_value), n=len(x)
    )


def proportion_z_test(successes_a: int, n_a: int,
                      successes_b: int, n_b: int) -> TestResult:
    """Two-proportion z-test (pooled variance)."""
    if min(n_a, n_b) <= 0:
        raise DataError("group sizes must be positive")
    if not (0 <= successes_a <= n_a and 0 <= successes_b <= n_b):
        raise DataError("success counts must lie within group sizes")
    p_a, p_b = successes_a / n_a, successes_b / n_b
    pooled = (successes_a + successes_b) / (n_a + n_b)
    variance = pooled * (1.0 - pooled) * (1.0 / n_a + 1.0 / n_b)
    if variance == 0.0:
        return TestResult(name="two_proportion_z", statistic=0.0, p_value=1.0,
                          n=n_a + n_b, detail="degenerate: pooled variance 0")
    z = (p_a - p_b) / np.sqrt(variance)
    p_value = 2.0 * stats.norm.sf(abs(z))
    return TestResult(
        name="two_proportion_z", statistic=float(z), p_value=float(p_value),
        n=n_a + n_b, detail=f"rate difference = {p_a - p_b:.4g}",
    )


def permutation_test(a, b, statistic: Callable[[np.ndarray, np.ndarray], float],
                     rng: np.random.Generator,
                     n_permutations: int = 2000) -> TestResult:
    """Two-sample permutation test for any scalar statistic.

    The p-value uses the add-one correction ``(1 + #extreme) / (1 + B)``
    so it is never exactly zero — a guaranteed-valid p-value, in the
    spirit of Q2's "guaranteed level of accuracy".
    """
    a, b = _check_sample(a, "a"), _check_sample(b, "b")
    if n_permutations < 1:
        raise DataError("n_permutations must be >= 1")
    observed = float(statistic(a, b))
    pooled = np.concatenate([a, b])
    n_a = len(a)
    count = 0
    for _ in range(n_permutations):
        shuffled = rng.permutation(pooled)
        value = float(statistic(shuffled[:n_a], shuffled[n_a:]))
        if abs(value) >= abs(observed):
            count += 1
    p_value = (1.0 + count) / (1.0 + n_permutations)
    return TestResult(
        name="permutation", statistic=observed, p_value=float(p_value),
        n=len(pooled), detail=f"{n_permutations} permutations",
    )


def mean_difference(a: np.ndarray, b: np.ndarray) -> float:
    """Plain difference in means (default permutation statistic)."""
    return float(np.mean(a) - np.mean(b))
