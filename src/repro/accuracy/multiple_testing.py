"""Multiple-testing corrections (Q2).

§2: "If enough hypotheses are tested, one will eventually be true for the
sample data used … Multiple testing problems are well-known in
statistical inference, but often underestimated."  These procedures are
what "often underestimated" costs you:

* Bonferroni and Holm control the family-wise error rate (FWER);
* Benjamini-Hochberg and Benjamini-Yekutieli control the false discovery
  rate (FDR), BY under arbitrary dependence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError

PROCEDURES = ("none", "bonferroni", "holm", "benjamini_hochberg",
              "benjamini_yekutieli")


@dataclass(frozen=True)
class CorrectionResult:
    """Adjusted p-values and rejection decisions for one family of tests."""

    procedure: str
    alpha: float
    p_values: np.ndarray
    adjusted: np.ndarray
    reject: np.ndarray

    @property
    def n_rejected(self) -> int:
        """How many hypotheses survive the correction."""
        return int(self.reject.sum())

    @property
    def n_tests(self) -> int:
        """Family size."""
        return len(self.p_values)


def _check_p_values(p_values) -> np.ndarray:
    p = np.asarray(p_values, dtype=np.float64)
    if p.ndim != 1 or len(p) == 0:
        raise DataError("p_values must be a non-empty 1-D array")
    if np.any((p < 0) | (p > 1)) or not np.all(np.isfinite(p)):
        raise DataError("p_values must lie in [0, 1]")
    return p


def bonferroni(p_values, alpha: float = 0.05) -> CorrectionResult:
    """FWER control by multiplying every p-value by the family size."""
    p = _check_p_values(p_values)
    adjusted = np.minimum(p * len(p), 1.0)
    return CorrectionResult("bonferroni", alpha, p, adjusted, adjusted < alpha)


def holm(p_values, alpha: float = 0.05) -> CorrectionResult:
    """Holm's step-down FWER control (uniformly better than Bonferroni)."""
    p = _check_p_values(p_values)
    m = len(p)
    order = np.argsort(p, kind="stable")
    # Step-down: adj_(i) = max_{j<=i} min((m-j)·p_(j), 1), zero-based ranks.
    adjusted_sorted = np.maximum.accumulate(
        np.minimum((m - np.arange(m)) * p[order], 1.0)
    )
    adjusted = np.empty(m)
    adjusted[order] = adjusted_sorted
    return CorrectionResult("holm", alpha, p, adjusted, adjusted < alpha)


def benjamini_hochberg(p_values, alpha: float = 0.05) -> CorrectionResult:
    """FDR control assuming independent (or PRDS) tests."""
    p = _check_p_values(p_values)
    m = len(p)
    order = np.argsort(p, kind="stable")
    ranked = p[order] * m / (np.arange(m) + 1)
    adjusted_sorted = np.minimum(np.minimum.accumulate(ranked[::-1])[::-1], 1.0)
    adjusted = np.empty(m)
    adjusted[order] = adjusted_sorted
    return CorrectionResult(
        "benjamini_hochberg", alpha, p, adjusted, adjusted < alpha
    )


def benjamini_yekutieli(p_values, alpha: float = 0.05) -> CorrectionResult:
    """FDR control under arbitrary dependence (harmonic-sum penalty)."""
    p = _check_p_values(p_values)
    m = len(p)
    harmonic = np.sum(1.0 / (np.arange(m) + 1.0))
    order = np.argsort(p, kind="stable")
    ranked = p[order] * m * harmonic / (np.arange(m) + 1)
    adjusted_sorted = np.minimum(np.minimum.accumulate(ranked[::-1])[::-1], 1.0)
    adjusted = np.empty(m)
    adjusted[order] = adjusted_sorted
    return CorrectionResult(
        "benjamini_yekutieli", alpha, p, adjusted, adjusted < alpha
    )


def correct(p_values, procedure: str = "holm",
            alpha: float = 0.05) -> CorrectionResult:
    """Dispatch to a correction procedure by name (``"none"`` = raw)."""
    if procedure == "none":
        p = _check_p_values(p_values)
        return CorrectionResult("none", alpha, p, p.copy(), p < alpha)
    table = {
        "bonferroni": bonferroni,
        "holm": holm,
        "benjamini_hochberg": benjamini_hochberg,
        "benjamini_yekutieli": benjamini_yekutieli,
    }
    if procedure not in table:
        raise DataError(
            f"unknown procedure {procedure!r}; choose from {PROCEDURES}"
        )
    return table[procedure](p_values, alpha)
