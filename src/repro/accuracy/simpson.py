"""Simpson's-paradox detection (Q2, experiment E5).

Given a binary exposure, a binary outcome and candidate stratifying
columns, the detector compares the aggregate association with the
within-stratum associations and flags stratifiers under which the trend
"disappears or reverses when these groups are combined" (§2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import ColumnType
from repro.data.table import Table
from repro.exceptions import DataError


@dataclass(frozen=True)
class StratumAssociation:
    """Exposure→outcome rate difference inside one stratum."""

    stratum: object
    n: int
    rate_exposed: float
    rate_unexposed: float

    @property
    def difference(self) -> float:
        """Outcome-rate difference (exposed minus unexposed)."""
        return self.rate_exposed - self.rate_unexposed


@dataclass(frozen=True)
class ParadoxFinding:
    """The aggregate vs stratified picture for one stratifier."""

    stratifier: str
    aggregate_difference: float
    strata: tuple[StratumAssociation, ...]
    reverses: bool

    @property
    def adjusted_difference(self) -> float:
        """Size-weighted mean of the stratum differences (standardisation).

        This is the back-door-adjusted effect when the stratifier is a
        sufficient confounder set — the number to report instead of the
        aggregate.
        """
        total = sum(stratum.n for stratum in self.strata)
        if total == 0:
            return 0.0
        return sum(
            stratum.n * stratum.difference for stratum in self.strata
        ) / total

    def render(self) -> str:
        """Human-readable summary of the (non-)paradox."""
        lines = [
            f"stratifier {self.stratifier!r}: aggregate diff "
            f"{self.aggregate_difference:+.4f}, adjusted "
            f"{self.adjusted_difference:+.4f}"
            f"{'  << REVERSAL' if self.reverses else ''}"
        ]
        for stratum in self.strata:
            lines.append(
                f"    {stratum.stratum}: diff {stratum.difference:+.4f} (n={stratum.n})"
            )
        return "\n".join(lines)


def _rate_difference(exposure: np.ndarray, outcome: np.ndarray,
                     mask: np.ndarray) -> tuple[float, float, int] | None:
    exposed = mask & (exposure == 1.0)
    unexposed = mask & (exposure == 0.0)
    if not exposed.any() or not unexposed.any():
        return None
    return (
        float(outcome[exposed].mean()),
        float(outcome[unexposed].mean()),
        int(mask.sum()),
    )


def detect_simpsons_paradox(table: Table, exposure: str, outcome: str,
                            stratifiers: list[str] | None = None,
                            min_stratum_size: int = 20,
                            ) -> list[ParadoxFinding]:
    """Scan candidate stratifiers for trend reversal.

    A finding ``reverses`` when the aggregate and the size-weighted
    adjusted differences have opposite signs (and both are non-zero).
    Strata smaller than ``min_stratum_size`` are ignored — tiny strata
    produce spurious reversals, the Q2 trap inside the Q2 detector.
    """
    exposure_values = table.column(exposure)
    outcome_values = table.column(outcome)
    if not np.all(np.isin(np.unique(exposure_values), (0.0, 1.0))):
        raise DataError(f"exposure column {exposure!r} must be 0/1")
    if not np.all(np.isin(np.unique(outcome_values), (0.0, 1.0))):
        raise DataError(f"outcome column {outcome!r} must be 0/1")
    if stratifiers is None:
        stratifiers = [
            spec.name for spec in table.schema
            if spec.ctype is ColumnType.CATEGORICAL
            and spec.name not in (exposure, outcome)
        ]
    everyone = np.ones(table.n_rows, dtype=bool)
    aggregate = _rate_difference(exposure_values, outcome_values, everyone)
    if aggregate is None:
        raise DataError("need both exposed and unexposed rows")
    aggregate_diff = aggregate[0] - aggregate[1]

    findings = []
    for name in stratifiers:
        strata = []
        for value in table.unique(name):
            mask = table.column(name) == value
            if mask.sum() < min_stratum_size:
                continue
            rates = _rate_difference(exposure_values, outcome_values, mask)
            if rates is None:
                continue
            strata.append(StratumAssociation(
                stratum=value, n=rates[2],
                rate_exposed=rates[0], rate_unexposed=rates[1],
            ))
        if len(strata) < 2:
            continue
        finding = ParadoxFinding(
            stratifier=name,
            aggregate_difference=aggregate_diff,
            strata=tuple(strata),
            reverses=False,
        )
        reverses = (
            finding.adjusted_difference * aggregate_diff < 0
            and abs(finding.adjusted_difference) > 1e-9
        )
        findings.append(ParadoxFinding(
            stratifier=name,
            aggregate_difference=aggregate_diff,
            strata=tuple(strata),
            reverses=reverses,
        ))
    findings.sort(key=lambda finding: finding.reverses, reverse=True)
    return findings
