"""The forking-paths / spurious-correlation hunter (Q2, experiment E3).

§2's example verbatim: "If we have one response variable (e.g., 'will
someone conduct a terrorist attack') and many predictor variables ('eye
color', 'high school math grade', 'first car brand', etc.), then it is
likely that just by accident a combination of predictor variables
explains the response variable for a given data set."

:func:`hunt_spurious_predictors` runs exactly this trap on data where
*every* predictor is pure noise by construction, then shows what each
multiple-testing correction does to the "discoveries".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accuracy.hypothesis import correlation_test
from repro.accuracy.multiple_testing import PROCEDURES, correct
from repro.exceptions import DataError
from repro.parallel import pmap, resolve_n_jobs

# A nod to the paper's list; names cycle when p exceeds the list.
PREDICTOR_THEMES = (
    "eye_color", "math_grade", "first_car_brand", "shoe_size",
    "favorite_cereal", "street_number", "cat_ownership", "coffee_cups",
)


@dataclass(frozen=True)
class SpuriousScanResult:
    """What a fishing expedition 'found' under each correction."""

    n_predictors: int
    n_rows: int
    alpha: float
    p_values: np.ndarray
    discoveries: dict[str, int]
    top_predictors: list[tuple[str, float]] = field(default_factory=list)

    @property
    def raw_false_discoveries(self) -> int:
        """Significant predictors with no correction (all false here)."""
        return self.discoveries["none"]


def generate_noise_study(n_rows: int, n_predictors: int,
                         rng: np.random.Generator,
                         binary_response: bool = True,
                         ) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """A response and predictors that are independent by construction."""
    if n_rows < 3 or n_predictors < 1:
        raise DataError("need n_rows >= 3 and n_predictors >= 1")
    if binary_response:
        response = (rng.random(n_rows) < 0.1).astype(np.float64)
    else:
        response = rng.standard_normal(n_rows)
    predictors = rng.standard_normal((n_rows, n_predictors))
    names = [
        f"{PREDICTOR_THEMES[index % len(PREDICTOR_THEMES)]}_{index}"
        for index in range(n_predictors)
    ]
    return response, predictors, names


class _PredictorTestTask:
    """Picklable worker: raw p-value of one predictor column."""

    __slots__ = ("predictors", "response")

    def __init__(self, predictors: np.ndarray, response: np.ndarray):
        self.predictors = predictors
        self.response = response

    def __call__(self, index: int) -> float:
        return correlation_test(
            self.predictors[:, index], self.response
        ).p_value


def hunt_spurious_predictors(response, predictors,
                             names: list[str] | None = None,
                             alpha: float = 0.05,
                             n_jobs: int | None = None,
                             backend: str = "thread") -> SpuriousScanResult:
    """Test every predictor against the response; correct the family.

    Returns per-procedure discovery counts plus the most "significant"
    predictors by raw p-value (the ones a careless analyst would report).
    The per-predictor tests are independent, so ``n_jobs`` (``None``
    defers to ``$REPRO_N_JOBS``) fans them out with p-values assembled
    by column index — identical for every setting.
    """
    response = np.asarray(response, dtype=np.float64)
    predictors = np.asarray(predictors, dtype=np.float64)
    if predictors.ndim != 2 or len(predictors) != len(response):
        raise DataError("predictors must be (n_rows, n_predictors) aligned with response")
    n_predictors = predictors.shape[1]
    if names is None:
        names = [f"x{index}" for index in range(n_predictors)]
    if len(names) != n_predictors:
        raise DataError("names must match the number of predictors")

    worker = _PredictorTestTask(predictors, response)
    if resolve_n_jobs(n_jobs) == 1:
        p_values = np.array([worker(index) for index in range(n_predictors)])
    else:
        p_values = np.array(pmap(
            worker, range(n_predictors), n_jobs=n_jobs, backend=backend,
            name="spurious_scan",
        ))
    discoveries = {
        procedure: correct(p_values, procedure, alpha).n_rejected
        for procedure in PROCEDURES
    }
    order = np.argsort(p_values, kind="stable")[:5]
    top = [(names[index], float(p_values[index])) for index in order]
    return SpuriousScanResult(
        n_predictors=n_predictors, n_rows=len(response), alpha=alpha,
        p_values=p_values, discoveries=discoveries, top_predictors=top,
    )


def expected_false_positives(n_predictors: int, alpha: float = 0.05) -> float:
    """How many 'discoveries' pure chance produces: n·alpha."""
    return n_predictors * alpha
