"""Power analysis for fairness audits (Q1 × Q2).

An audit that reports "no significant disparity" on 80 people has not
shown fairness — it has shown an underpowered audit.  These helpers make
the audit's own accuracy explicit (the Q2 discipline applied to the Q1
instrument): the sample size needed to *detect* a selection-rate gap,
and the minimum gap detectable at a given sample size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import DataError


@dataclass(frozen=True)
class AuditPower:
    """Design parameters of a two-proportion fairness audit."""

    baseline_rate: float
    detectable_gap: float
    alpha: float
    power: float
    n_per_group: int

    def render(self) -> str:
        """One-line design summary."""
        return (
            f"to detect a selection gap of {self.detectable_gap:.3f} off a "
            f"base rate of {self.baseline_rate:.2f} at alpha={self.alpha:g} "
            f"with power {self.power:.0%}: n >= {self.n_per_group} per group"
        )


def required_audit_size(baseline_rate: float, detectable_gap: float,
                        alpha: float = 0.05, power: float = 0.8) -> AuditPower:
    """Per-group sample size for a two-sided two-proportion z-test.

    Standard normal-approximation formula with pooled variance under H0
    and unpooled under H1.
    """
    if not 0.0 < baseline_rate < 1.0:
        raise DataError("baseline_rate must be in (0, 1)")
    if detectable_gap <= 0 or baseline_rate - detectable_gap <= 0:
        raise DataError("detectable_gap must be positive and feasible")
    if not 0.0 < alpha < 1.0 or not 0.0 < power < 1.0:
        raise DataError("alpha and power must be in (0, 1)")
    p1 = baseline_rate
    p2 = baseline_rate - detectable_gap
    pooled = 0.5 * (p1 + p2)
    z_alpha = stats.norm.ppf(1.0 - alpha / 2.0)
    z_beta = stats.norm.ppf(power)
    numerator = (
        z_alpha * np.sqrt(2.0 * pooled * (1.0 - pooled))
        + z_beta * np.sqrt(p1 * (1.0 - p1) + p2 * (1.0 - p2))
    ) ** 2
    n = int(np.ceil(numerator / detectable_gap**2))
    return AuditPower(
        baseline_rate=baseline_rate, detectable_gap=detectable_gap,
        alpha=alpha, power=power, n_per_group=n,
    )


def minimum_detectable_gap(n_per_group: int, baseline_rate: float,
                           alpha: float = 0.05, power: float = 0.8) -> float:
    """Smallest selection-rate gap an audit of this size can detect.

    Solved by bisection on :func:`required_audit_size`.
    """
    if n_per_group < 2:
        raise DataError("n_per_group must be >= 2")
    low, high = 1e-4, baseline_rate - 1e-4
    if required_audit_size(baseline_rate, high, alpha, power).n_per_group > n_per_group:
        return float("nan")  # even the largest feasible gap is undetectable
    for _ in range(60):
        mid = 0.5 * (low + high)
        needed = required_audit_size(baseline_rate, mid, alpha, power).n_per_group
        if needed <= n_per_group:
            high = mid
        else:
            low = mid
    return high


def achieved_power(n_per_group: int, baseline_rate: float, gap: float,
                   alpha: float = 0.05) -> float:
    """Power of a two-proportion audit at the given design point."""
    if n_per_group < 2:
        raise DataError("n_per_group must be >= 2")
    p1 = baseline_rate
    p2 = baseline_rate - gap
    if not (0.0 < p1 < 1.0 and 0.0 < p2 < 1.0):
        raise DataError("rates must stay inside (0, 1)")
    pooled = 0.5 * (p1 + p2)
    z_alpha = stats.norm.ppf(1.0 - alpha / 2.0)
    se0 = np.sqrt(2.0 * pooled * (1.0 - pooled) / n_per_group)
    se1 = np.sqrt((p1 * (1.0 - p1) + p2 * (1.0 - p2)) / n_per_group)
    z = (abs(gap) - z_alpha * se0) / se1
    return float(stats.norm.cdf(z))
