"""Accuracy pillar (Q2): guarantees, corrections, causality, paradoxes."""

from repro.accuracy.bootstrap import (
    IntervalEstimate,
    bootstrap_ci,
    bootstrap_paired_ci,
)
from repro.accuracy.causal import (
    CausalDAG,
    EffectEstimate,
    compare_estimators,
    doubly_robust,
    estimate_propensities,
    inverse_probability_weighting,
    naive_difference,
    propensity_score_matching,
    rct_estimate,
)
from repro.accuracy.conformal import (
    GroupConditionalConformalClassifier,
    PredictionSet,
    SplitConformalClassifier,
    SplitConformalRegressor,
)
from repro.accuracy.forking_paths import (
    SpuriousScanResult,
    expected_false_positives,
    generate_noise_study,
    hunt_spurious_predictors,
)
from repro.accuracy.hypothesis import (
    TestResult,
    correlation_test,
    mean_difference,
    permutation_test,
    proportion_z_test,
    two_sample_t_test,
)
from repro.accuracy.multiple_testing import (
    PROCEDURES,
    CorrectionResult,
    benjamini_hochberg,
    benjamini_yekutieli,
    bonferroni,
    correct,
    holm,
)
from repro.accuracy.simpson import (
    ParadoxFinding,
    StratumAssociation,
    detect_simpsons_paradox,
)
from repro.accuracy.power import (
    AuditPower,
    achieved_power,
    minimum_detectable_gap,
    required_audit_size,
)

__all__ = [
    "GroupConditionalConformalClassifier",
    "required_audit_size",
    "minimum_detectable_gap",
    "achieved_power",
    "AuditPower",
    "PROCEDURES",
    "CausalDAG",
    "CorrectionResult",
    "EffectEstimate",
    "IntervalEstimate",
    "ParadoxFinding",
    "PredictionSet",
    "SplitConformalClassifier",
    "SplitConformalRegressor",
    "SpuriousScanResult",
    "StratumAssociation",
    "TestResult",
    "benjamini_hochberg",
    "benjamini_yekutieli",
    "bonferroni",
    "bootstrap_ci",
    "bootstrap_paired_ci",
    "compare_estimators",
    "correct",
    "correlation_test",
    "detect_simpsons_paradox",
    "doubly_robust",
    "estimate_propensities",
    "expected_false_positives",
    "generate_noise_study",
    "holm",
    "hunt_spurious_predictors",
    "inverse_probability_weighting",
    "mean_difference",
    "naive_difference",
    "permutation_test",
    "propensity_score_matching",
    "proportion_z_test",
    "rct_estimate",
    "two_sample_t_test",
]
