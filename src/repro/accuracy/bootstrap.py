"""Bootstrap confidence intervals (Q2).

Every headline number a pipeline reports should travel with an interval;
these helpers make that cheap for arbitrary statistics and for model
metrics evaluated on a test set.

Both entry points draw **all** resample indices in one batched
``rng.integers`` call — bit-identical to the historical one-draw-per-
resample loop, since NumPy fills bounded integers from the same stream
either way — and then evaluate the statistic over the rows.  That
evaluation is embarrassingly parallel: pass ``n_jobs`` to fan it out
via :mod:`repro.parallel` with results guaranteed identical for any
``n_jobs`` and backend (randomness is fixed before the first worker
starts, and estimates are assembled by resample index).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import DataError
from repro.parallel import pmap, resolve_n_jobs
from repro.store import array_fingerprint, code_fingerprint, resolve_store

#: Degenerate-resample failures a paired bootstrap may legitimately skip:
#: a resample with a single class breaks AUC (ValueError), an empty group
#: divides by zero, and library metrics signal bad slices with DataError.
#: Anything else is a real bug in the metric and propagates.
_DEGENERATE_ERRORS = (ValueError, ZeroDivisionError, DataError)


@dataclass(frozen=True)
class IntervalEstimate:
    """A point estimate with a confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int
    n_skipped: int = 0

    @property
    def width(self) -> float:
        """Interval width — the honest measure of how little we know."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Does the interval cover ``value``?"""
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (f"{self.estimate:.4f} "
                f"[{self.lower:.4f}, {self.upper:.4f}] @ {self.confidence:.0%}")


class _ResampleStatistic:
    """Picklable per-resample worker: ``statistic(values[idx])``."""

    __slots__ = ("values", "statistic")

    def __init__(self, values: np.ndarray, statistic: Callable):
        self.values = values
        self.statistic = statistic

    def __call__(self, idx: np.ndarray) -> float:
        return self.statistic(self.values[idx])


class _ResampleMetric:
    """Picklable paired worker; degenerate resamples become NaN."""

    __slots__ = ("y_true", "y_pred", "metric")

    def __init__(self, y_true: np.ndarray, y_pred: np.ndarray,
                 metric: Callable):
        self.y_true = y_true
        self.y_pred = y_pred
        self.metric = metric

    def __call__(self, idx: np.ndarray) -> float:
        try:
            return self.metric(self.y_true[idx], self.y_pred[idx])
        except _DEGENERATE_ERRORS:
            return float("nan")


def bootstrap_ci(values, statistic: Callable[[np.ndarray], float],
                 rng: np.random.Generator,
                 confidence: float = 0.95,
                 n_resamples: int = 1000,
                 n_jobs: int | None = None,
                 backend: str = "thread",
                 store=None) -> IntervalEstimate:
    """Percentile bootstrap interval for ``statistic`` of one sample.

    ``n_jobs`` parallelises the statistic evaluations (``None`` defers
    to ``$REPRO_N_JOBS``); estimates are identical for every setting.
    ``store`` memoises the interval in an
    :class:`~repro.store.ArtifactStore` keyed on the data content, the
    statistic's code, the parameters, and the rng state (``None``
    defers to ``$REPRO_STORE``); ``n_jobs``/``backend`` stay *out* of
    the key because results are identical across them.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or len(values) < 2:
        raise DataError("values must be a 1-D array with at least 2 entries")
    if not 0.0 < confidence < 1.0:
        raise DataError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise DataError("need at least 10 resamples")

    def compute() -> IntervalEstimate:
        n = len(values)
        indices = rng.integers(0, n, size=(n_resamples, n))
        worker = _ResampleStatistic(values, statistic)
        if resolve_n_jobs(n_jobs) == 1:
            estimates = np.array([worker(row) for row in indices])
        else:
            estimates = np.array(pmap(
                worker, list(indices), n_jobs=n_jobs, backend=backend,
                name="bootstrap",
            ))
        alpha = 1.0 - confidence
        lower, upper = np.quantile(
            estimates, [alpha / 2.0, 1.0 - alpha / 2.0]
        )
        return IntervalEstimate(
            estimate=float(statistic(values)), lower=float(lower),
            upper=float(upper), confidence=confidence,
            n_resamples=n_resamples,
        )

    store = resolve_store(store)
    if store is None:
        return compute()
    return store.memoize(
        {
            "stage": "bootstrap_ci",
            "values": array_fingerprint(values),
            "statistic": code_fingerprint(statistic),
            "confidence": confidence,
            "n_resamples": n_resamples,
        },
        compute, rng=rng,
    )


def bootstrap_paired_ci(y_true, y_pred,
                        metric: Callable[[np.ndarray, np.ndarray], float],
                        rng: np.random.Generator,
                        confidence: float = 0.95,
                        n_resamples: int = 1000,
                        n_jobs: int | None = None,
                        backend: str = "thread",
                        store=None) -> IntervalEstimate:
    """Percentile bootstrap for a metric of aligned (y_true, y_pred) pairs.

    Rows are resampled jointly, preserving the pairing — this is how the
    FACT report attaches intervals to accuracy, AUC, or any group metric.

    Resamples that are degenerate for the metric (single-class AUC and
    friends — :data:`_DEGENERATE_ERRORS`) are skipped and *counted* in
    the result's ``n_skipped``; any other exception from the metric is a
    bug and propagates.  ``n_jobs`` parallelises the metric evaluations
    with identical results for every setting.  ``store`` memoises the
    interval keyed on data content + metric code + parameters + rng
    state (``None`` defers to ``$REPRO_STORE``); ``n_jobs``/``backend``
    stay out of the key because results are identical across them.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise DataError("y_true and y_pred must be aligned 1-D arrays")
    if len(y_true) < 2:
        raise DataError("need at least 2 pairs")

    def compute() -> IntervalEstimate:
        n = len(y_true)
        indices = rng.integers(0, n, size=(n_resamples, n))
        worker = _ResampleMetric(y_true, y_pred, metric)
        if resolve_n_jobs(n_jobs) == 1:
            estimates = np.array([worker(row) for row in indices])
        else:
            estimates = np.array(pmap(
                worker, list(indices), n_jobs=n_jobs, backend=backend,
                name="bootstrap",
            ))
        valid = estimates[~np.isnan(estimates)]
        n_skipped = n_resamples - len(valid)
        if len(valid) < max(10, n_resamples // 2):
            raise DataError(
                "too many degenerate resamples for a stable interval"
            )
        alpha = 1.0 - confidence
        lower, upper = np.quantile(valid, [alpha / 2.0, 1.0 - alpha / 2.0])
        return IntervalEstimate(
            estimate=float(metric(y_true, y_pred)), lower=float(lower),
            upper=float(upper), confidence=confidence,
            n_resamples=len(valid), n_skipped=n_skipped,
        )

    store = resolve_store(store)
    if store is None:
        return compute()
    return store.memoize(
        {
            "stage": "bootstrap_paired_ci",
            "y_true": array_fingerprint(y_true),
            "y_pred": array_fingerprint(y_pred),
            "metric": code_fingerprint(metric),
            "confidence": confidence,
            "n_resamples": n_resamples,
        },
        compute, rng=rng,
    )
