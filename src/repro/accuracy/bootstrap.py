"""Bootstrap confidence intervals (Q2).

Every headline number a pipeline reports should travel with an interval;
these helpers make that cheap for arbitrary statistics and for model
metrics evaluated on a test set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import DataError


@dataclass(frozen=True)
class IntervalEstimate:
    """A point estimate with a confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int

    @property
    def width(self) -> float:
        """Interval width — the honest measure of how little we know."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Does the interval cover ``value``?"""
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (f"{self.estimate:.4f} "
                f"[{self.lower:.4f}, {self.upper:.4f}] @ {self.confidence:.0%}")


def bootstrap_ci(values, statistic: Callable[[np.ndarray], float],
                 rng: np.random.Generator,
                 confidence: float = 0.95,
                 n_resamples: int = 1000) -> IntervalEstimate:
    """Percentile bootstrap interval for ``statistic`` of one sample."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or len(values) < 2:
        raise DataError("values must be a 1-D array with at least 2 entries")
    if not 0.0 < confidence < 1.0:
        raise DataError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise DataError("need at least 10 resamples")
    estimates = np.empty(n_resamples)
    n = len(values)
    for index in range(n_resamples):
        resample = values[rng.integers(0, n, size=n)]
        estimates[index] = statistic(resample)
    alpha = 1.0 - confidence
    lower, upper = np.quantile(estimates, [alpha / 2.0, 1.0 - alpha / 2.0])
    return IntervalEstimate(
        estimate=float(statistic(values)), lower=float(lower),
        upper=float(upper), confidence=confidence, n_resamples=n_resamples,
    )


def bootstrap_paired_ci(y_true, y_pred,
                        metric: Callable[[np.ndarray, np.ndarray], float],
                        rng: np.random.Generator,
                        confidence: float = 0.95,
                        n_resamples: int = 1000) -> IntervalEstimate:
    """Percentile bootstrap for a metric of aligned (y_true, y_pred) pairs.

    Rows are resampled jointly, preserving the pairing — this is how the
    FACT report attaches intervals to accuracy, AUC, or any group metric.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise DataError("y_true and y_pred must be aligned 1-D arrays")
    if len(y_true) < 2:
        raise DataError("need at least 2 pairs")
    estimates = []
    n = len(y_true)
    for _ in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        try:
            estimates.append(metric(y_true[idx], y_pred[idx]))
        except Exception:
            continue  # e.g. a resample with one class; skip, keep validity via count
    if len(estimates) < max(10, n_resamples // 2):
        raise DataError("too many degenerate resamples for a stable interval")
    estimates_arr = np.asarray(estimates)
    alpha = 1.0 - confidence
    lower, upper = np.quantile(estimates_arr, [alpha / 2.0, 1.0 - alpha / 2.0])
    return IntervalEstimate(
        estimate=float(metric(y_true, y_pred)), lower=float(lower),
        upper=float(upper), confidence=confidence, n_resamples=len(estimates),
    )
