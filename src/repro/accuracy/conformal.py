"""Split-conformal prediction: distribution-free accuracy guarantees (Q2).

The paper asks "how to answer questions with a *guaranteed* level of
accuracy?"  Split conformal prediction is the textbook answer: given any
fitted model and a calibration set the model never saw, the prediction
sets/intervals cover the truth with probability at least ``1 - alpha``,
with no distributional assumptions beyond exchangeability.  E4 verifies
the guarantee empirically across models and alphas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError, NotFittedError
from repro.learn.base import Classifier, Regressor
from repro.store import (
    array_fingerprint,
    code_fingerprint,
    object_fingerprint,
    resolve_store,
)


def _conformal_quantile(scores: np.ndarray, alpha: float) -> float:
    """The ceil((n+1)(1-alpha))/n empirical quantile of the scores."""
    n = len(scores)
    rank = int(np.ceil((n + 1) * (1.0 - alpha)))
    if rank > n:
        return float(np.inf)
    return float(np.sort(scores)[rank - 1])


@dataclass(frozen=True)
class PredictionSet:
    """A conformal prediction set for one example."""

    labels: tuple[float, ...]

    def covers(self, label: float) -> bool:
        """Is the true label inside the set?"""
        return float(label) in self.labels

    @property
    def size(self) -> int:
        """Set cardinality (efficiency measure; 1 is ideal)."""
        return len(self.labels)


class SplitConformalClassifier:
    """Conformal prediction sets around any binary classifier.

    Non-conformity score: ``1 - p̂(true class)``.  A label enters the
    prediction set when its non-conformity is at most the calibration
    quantile.
    """

    def __init__(self, model: Classifier, alpha: float = 0.1):
        if not 0.0 < alpha < 1.0:
            raise DataError("alpha must be in (0, 1)")
        self.model = model
        self.alpha = alpha
        self._quantile: float | None = None

    def calibrate(self, X_cal, y_cal, store=None) -> "SplitConformalClassifier":
        """Compute the non-conformity quantile on held-out data.

        ``store`` memoises the quantile keyed on the model's content,
        the calibration data, and ``alpha`` (``None`` defers to
        ``$REPRO_STORE``) — calibration is pure, so a warm re-audit
        replays it exactly.
        """
        y_cal = np.asarray(y_cal, dtype=np.float64)

        def compute() -> float:
            probabilities = self.model.predict_proba(X_cal)
            p_true = np.where(
                y_cal == 1.0, probabilities, 1.0 - probabilities
            )
            return _conformal_quantile(1.0 - p_true, self.alpha)

        store = resolve_store(store)
        if store is None:
            self._quantile = compute()
            return self
        self._quantile = store.memoize(
            {
                "stage": "conformal.calibrate",
                "model": object_fingerprint(self.model),
                "X_cal": array_fingerprint(np.asarray(X_cal)),
                "y_cal": array_fingerprint(y_cal),
                "alpha": self.alpha,
                "code": code_fingerprint(_conformal_quantile),
            },
            compute,
        )
        return self

    def predict_sets(self, X) -> list[PredictionSet]:
        """Prediction sets with ≥ 1-alpha marginal coverage."""
        if self._quantile is None:
            raise NotFittedError("calibrate() must run before predict_sets()")
        probabilities = self.model.predict_proba(X)
        sets = []
        for p in probabilities:
            labels = []
            if 1.0 - (1.0 - p) <= self._quantile + 1e-12:  # score of label 0
                labels.append(0.0)
            if 1.0 - p <= self._quantile + 1e-12:          # score of label 1
                labels.append(1.0)
            if not labels:  # numerical corner: keep validity with full set
                labels = [0.0, 1.0]
            sets.append(PredictionSet(tuple(labels)))
        return sets

    def coverage(self, X, y_true) -> float:
        """Empirical fraction of prediction sets containing the truth."""
        y_true = np.asarray(y_true, dtype=np.float64)
        sets = self.predict_sets(X)
        return float(np.mean([
            s.covers(label) for s, label in zip(sets, y_true)
        ]))

    def mean_set_size(self, X) -> float:
        """Average set cardinality (1.0 = maximally informative)."""
        return float(np.mean([s.size for s in self.predict_sets(X)]))


class GroupConditionalConformalClassifier:
    """Conformal prediction sets with *per-group* coverage (Mondrian CP).

    Marginal conformal coverage can hide a fairness failure: 90% overall
    may be 96% for the majority and 78% for a minority whose scores are
    worse.  Calibrating one quantile per protected group restores the
    guarantee *within every group* — equalised coverage, the point where
    Q1 and Q2 meet.
    """

    def __init__(self, model: Classifier, alpha: float = 0.1):
        if not 0.0 < alpha < 1.0:
            raise DataError("alpha must be in (0, 1)")
        self.model = model
        self.alpha = alpha
        self._quantiles: dict[object, float] | None = None

    def calibrate(self, X_cal, y_cal, group_cal) -> "GroupConditionalConformalClassifier":
        """Compute one non-conformity quantile per group."""
        y_cal = np.asarray(y_cal, dtype=np.float64)
        group_cal = np.asarray(group_cal)
        if len(y_cal) != len(group_cal):
            raise DataError("y_cal and group_cal must be aligned")
        probabilities = self.model.predict_proba(X_cal)
        p_true = np.where(y_cal == 1.0, probabilities, 1.0 - probabilities)
        scores = 1.0 - p_true
        self._quantiles = {}
        for value in np.unique(group_cal):
            mask = group_cal == value
            if mask.sum() < 2:
                raise DataError(
                    f"group {value!r} has fewer than 2 calibration rows"
                )
            self._quantiles[value] = _conformal_quantile(
                scores[mask], self.alpha
            )
        return self

    def predict_sets(self, X, group) -> list[PredictionSet]:
        """Per-group-calibrated prediction sets."""
        if self._quantiles is None:
            raise NotFittedError("calibrate() must run before predict_sets()")
        group = np.asarray(group)
        probabilities = self.model.predict_proba(X)
        if len(group) != len(probabilities):
            raise DataError("group must align with X")
        sets = []
        for p, value in zip(probabilities, group):
            if value not in self._quantiles:
                raise DataError(f"unseen group {value!r} at prediction time")
            quantile = self._quantiles[value]
            labels = []
            if p <= quantile + 1e-12:          # score of label 0 is p
                labels.append(0.0)
            if 1.0 - p <= quantile + 1e-12:    # score of label 1 is 1-p
                labels.append(1.0)
            if not labels:
                labels = [0.0, 1.0]
            sets.append(PredictionSet(tuple(labels)))
        return sets

    def coverage_by_group(self, X, y_true, group) -> dict[object, float]:
        """Empirical coverage within each group."""
        y_true = np.asarray(y_true, dtype=np.float64)
        group = np.asarray(group)
        sets = self.predict_sets(X, group)
        covered = np.asarray([
            s.covers(label) for s, label in zip(sets, y_true)
        ])
        return {
            value: float(covered[group == value].mean())
            for value in np.unique(group)
        }


class SplitConformalRegressor:
    """Conformal intervals around any regressor (absolute-residual score)."""

    def __init__(self, model: Regressor, alpha: float = 0.1):
        if not 0.0 < alpha < 1.0:
            raise DataError("alpha must be in (0, 1)")
        self.model = model
        self.alpha = alpha
        self._quantile: float | None = None

    def calibrate(self, X_cal, y_cal, store=None) -> "SplitConformalRegressor":
        """Compute the residual quantile on held-out data.

        ``store`` memoises the quantile exactly as the classifier's
        :meth:`SplitConformalClassifier.calibrate` does.
        """
        y_cal = np.asarray(y_cal, dtype=np.float64)

        def compute() -> float:
            residuals = np.abs(y_cal - self.model.predict(X_cal))
            return _conformal_quantile(residuals, self.alpha)

        store = resolve_store(store)
        if store is None:
            self._quantile = compute()
            return self
        self._quantile = store.memoize(
            {
                "stage": "conformal.calibrate_regressor",
                "model": object_fingerprint(self.model),
                "X_cal": array_fingerprint(np.asarray(X_cal)),
                "y_cal": array_fingerprint(y_cal),
                "alpha": self.alpha,
                "code": code_fingerprint(_conformal_quantile),
            },
            compute,
        )
        return self

    def predict_intervals(self, X) -> np.ndarray:
        """``(n, 2)`` array of [lower, upper] with ≥ 1-alpha coverage."""
        if self._quantile is None:
            raise NotFittedError("calibrate() must run before predict_intervals()")
        center = self.model.predict(X)
        return np.column_stack([
            center - self._quantile, center + self._quantile
        ])

    def coverage(self, X, y_true) -> float:
        """Empirical fraction of intervals containing the truth."""
        y_true = np.asarray(y_true, dtype=np.float64)
        intervals = self.predict_intervals(X)
        return float(np.mean(
            (y_true >= intervals[:, 0]) & (y_true <= intervals[:, 1])
        ))

    def mean_width(self, X) -> float:
        """Average interval width (efficiency measure)."""
        intervals = self.predict_intervals(X)
        return float(np.mean(intervals[:, 1] - intervals[:, 0]))
