"""Zipf-tenant, bursty-arrival load generation for the query server.

Real DP serving traffic is skewed twice over: a handful of tenants send
most of the queries (tenant popularity ~ Zipf), and a handful of query
*shapes* account for most of the volume (dashboards refresh the same
aggregates).  Arrivals are bursty — clients submit pages of queries at
once, not a smooth stream.  This module synthesizes exactly that
workload and drives a :class:`~repro.serve.server.QueryServer` with it,
reporting sustained throughput and end-to-end latency percentiles.

It is the data source behind the ``BENCH_serve`` trajectory's
``serve_load`` workload (``repro.bench``), the standalone
``benchmarks/bench_e20_async_serve.py`` experiment, and the CI smoke
step — one generator, three consumers, so the numbers are comparable.

Everything is deterministic under a fixed seed: the table rows, the
tenant/shape draws, and the burst sizes all come from one
``numpy`` generator, and the server's own releases are deterministic by
construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.serve.config import ServeConfig
from repro.serve.protocol import QueryRequest
from repro.serve.server import QueryServer

#: Default table name the workload queries.
TABLE_NAME = "census"


def _zipf_probabilities(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    probabilities = ranks ** -float(s)
    return probabilities / probabilities.sum()


def query_shapes(n_shapes: int, table: str = TABLE_NAME) -> list[dict]:
    """A pool of ``n_shapes`` distinct query shapes over the census table.

    Shapes cycle through every mechanism the planner speaks (count,
    sum, mean, quantile, histogram) with varied ε, bounds, and columns,
    so a workload exercises all five release kernels and a realistic
    mix of cache hits, coalescible groups, and singleton releases.
    """
    if n_shapes < 1:
        raise DataError("n_shapes must be at least 1")
    epsilons = (0.01, 0.02, 0.05, 0.1)
    columns = (("age", 18.0, 80.0), ("hours_per_week", 0.0, 100.0),
               ("education_years", 0.0, 20.0), ("capital_gain", 0.0, 10_000.0))
    quantiles = (0.25, 0.5, 0.9)
    templates: list[dict] = []
    index = 0
    while len(templates) < n_shapes:
        epsilon = epsilons[index % len(epsilons)]
        column, lower, upper = columns[index % len(columns)]
        kind = ("count", "mean", "sum", "quantile", "histogram")[index % 5]
        shape: dict = {"table": table, "kind": kind,
                       "epsilon": epsilon + 0.001 * (index // 20)}
        if kind in ("mean", "sum", "quantile"):
            shape.update(column=column, lower=lower, upper=upper)
        if kind == "quantile":
            shape["q"] = quantiles[index % len(quantiles)]
        if kind == "histogram":
            shape.update(column="education",
                         bins=("hs", "some-college", "bachelors",
                               "masters", "doctorate"))
        templates.append(shape)
        index += 1
    return templates[:n_shapes]


def zipf_workload(n_queries: int, *, n_tenants: int = 16,
                  n_shapes: int = 64, zipf_s: float = 1.2,
                  seed: int = 0, table: str = TABLE_NAME,
                  ) -> list[QueryRequest]:
    """``n_queries`` requests with Zipf-skewed tenants *and* shapes."""
    if n_queries < 1:
        raise DataError("n_queries must be at least 1")
    if n_tenants < 1:
        raise DataError("n_tenants must be at least 1")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xF0AD]))
    shapes = query_shapes(n_shapes, table=table)
    tenant_draws = rng.choice(
        n_tenants, size=n_queries, p=_zipf_probabilities(n_tenants, zipf_s)
    )
    shape_draws = rng.choice(
        len(shapes), size=n_queries, p=_zipf_probabilities(len(shapes), zipf_s)
    )
    return [
        QueryRequest(tenant=f"tenant-{tenant:03d}", **shapes[shape])
        for tenant, shape in zip(tenant_draws, shape_draws)
    ]


def bursts(requests: list, *, mean_burst: int = 256,
           seed: int = 0) -> list[list]:
    """Split a workload into geometric-sized bursts (arrival clumps)."""
    if mean_burst < 1:
        raise DataError("mean_burst must be at least 1")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xB1257]))
    chunks: list[list] = []
    start = 0
    while start < len(requests):
        size = max(1, int(rng.geometric(1.0 / mean_burst)))
        chunks.append(requests[start:start + size])
        start += size
    return chunks


@dataclass(frozen=True)
class LoadReport:
    """What one load-generation run measured."""

    queries: int
    wall_s: float
    qps: float
    statuses: dict
    latency_ms: dict
    batching: dict
    cache: dict | None

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "wall_s": self.wall_s,
            "qps": self.qps,
            "statuses": dict(self.statuses),
            "latency_ms": dict(self.latency_ms),
            "batching": dict(self.batching),
            "cache": dict(self.cache) if self.cache is not None else None,
        }


def run_load(server: QueryServer, requests: list, *,
             mean_burst: int = 256, seed: int = 0) -> LoadReport:
    """Drive ``server`` with ``requests`` in bursts; measure sustained qps.

    The wall clock runs from the first submission to the last resolved
    answer (``drain``), so the reported throughput includes batching
    windows, queueing, and execution — not just submission speed.
    """
    chunks = bursts(requests, mean_burst=mean_burst, seed=seed)
    started = time.perf_counter()
    pending = []
    for chunk in chunks:
        pending.extend(server.submit_many(chunk))
    server.drain()
    wall_s = time.perf_counter() - started
    results = [p.result() for p in pending]

    statuses: dict[str, int] = {}
    for result in results:
        statuses[result.status] = statuses.get(result.status, 0) + 1
    durations = np.asarray(
        [r.duration for r in results if r.duration is not None]
    )
    latency_ms = {}
    if durations.size:
        p50, p90, p99 = np.percentile(durations, (50, 90, 99))
        latency_ms = {
            "p50": float(p50) * 1e3, "p90": float(p90) * 1e3,
            "p99": float(p99) * 1e3, "max": float(durations.max()) * 1e3,
        }
    stats = server.stats()
    return LoadReport(
        queries=len(results),
        wall_s=wall_s,
        qps=len(results) / wall_s if wall_s > 0 else float("inf"),
        statuses=statuses,
        latency_ms=latency_ms,
        batching=stats["batching"],
        cache=stats["cache"],
    )


def run_zipf_load(*, n_queries: int = 20_000, n_rows: int = 5_000,
                  n_tenants: int = 16, n_shapes: int = 64,
                  zipf_s: float = 1.2, mean_burst: int = 256,
                  seed: int = 0, config: ServeConfig | None = None,
                  ) -> LoadReport:
    """Build a census table + server, run the Zipf workload end to end.

    The one-call entry point the bench suite, the experiment script,
    and CI all share.  ``config`` defaults to a batching configuration
    (2 ms window) with a per-tenant budget big enough that the workload
    is bounded by serving speed, not ε exhaustion.
    """
    from repro.data.synth import CensusIncomeGenerator

    if config is None:
        # Open-loop submission: the bounded queue must hold the whole
        # workload (shedding is a correctness feature, not a benchmark).
        config = ServeConfig(workers=2, seed=seed, batch_window_ms=2.0,
                             max_queue_depth=max(4096, n_queries),
                             default_epsilon_budget=1e9)
    table = CensusIncomeGenerator().generate(
        n_rows, np.random.default_rng(np.random.SeedSequence([seed, 0x7AB]))
    )
    requests = zipf_workload(n_queries, n_tenants=n_tenants,
                             n_shapes=n_shapes, zipf_s=zipf_s, seed=seed)
    with QueryServer(config) as server:
        server.register_table(TABLE_NAME, table)
        return run_load(server, requests, mean_burst=mean_burst, seed=seed)
