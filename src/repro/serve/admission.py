"""Admission control: refuse work early, cheaply, and per tenant.

Two independent guards, both optional:

* a per-tenant **sliding-window rate limit** (at most ``rate_limit``
  admissions per ``window_s`` seconds), so one chatty tenant cannot
  starve the others; and
* a global **in-flight cap** (at most ``max_inflight`` queries being
  executed at once), so a burst saturates the worker pool's queue
  instead of growing it without bound.

Admission happens *before* planning and budgeting: a refused query costs
no ε, no table scan, and no noise draw.  The clock is injectable
(``now_fn``) so tests drive the window deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.exceptions import DataError

#: Rejection reasons returned by :meth:`AdmissionController.try_admit`.
REASON_RATE = "rate_limit"
REASON_OVERLOAD = "overload"


class AdmissionController:
    """Thread-safe per-tenant rate limiting plus a global in-flight cap."""

    def __init__(self, rate_limit: int | None = None, window_s: float = 1.0,
                 max_inflight: int | None = None, now_fn=time.monotonic):
        if rate_limit is not None and rate_limit < 1:
            raise DataError("rate_limit must be at least 1 (or None)")
        if window_s <= 0:
            raise DataError("window_s must be positive")
        if max_inflight is not None and max_inflight < 1:
            raise DataError("max_inflight must be at least 1 (or None)")
        self.rate_limit = rate_limit
        self.window_s = float(window_s)
        self.max_inflight = max_inflight
        self._now = now_fn
        self._lock = threading.Lock()
        self._admissions: dict[str, deque[float]] = {}
        self._inflight = 0
        self.rejections: dict[str, int] = {REASON_RATE: 0, REASON_OVERLOAD: 0}

    def try_admit(self, tenant: str) -> str | None:
        """Admit ``tenant`` (``None``) or explain the refusal (a reason).

        An admission counts against the tenant's window immediately and
        holds one in-flight slot until :meth:`release`.
        """
        now = self._now()
        with self._lock:
            if self.max_inflight is not None and self._inflight >= self.max_inflight:
                self.rejections[REASON_OVERLOAD] += 1
                return REASON_OVERLOAD
            if self.rate_limit is not None:
                window = self._admissions.setdefault(tenant, deque())
                while window and now - window[0] >= self.window_s:
                    window.popleft()
                if len(window) >= self.rate_limit:
                    self.rejections[REASON_RATE] += 1
                    return REASON_RATE
                window.append(now)
            self._inflight += 1
            return None

    def release(self, tenant: str) -> None:
        """Give back the in-flight slot taken at admission."""
        with self._lock:
            if self._inflight <= 0:
                raise DataError("release without a matching admission")
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Queries currently admitted and not yet released."""
        with self._lock:
            return self._inflight
