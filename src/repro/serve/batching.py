"""The async batched dispatch loop and the vectorized release kernels.

This module is the serving front end's engine room.  A single asyncio
event loop (on its own daemon thread) owns admission, planning, cache
lookup, and **coalescing**: requests that miss the answer cache are
grouped by :attr:`~repro.serve.planner.QueryPlan.group_key` — same
table version, same mechanism, same clipping bounds — and wait up to
``batch_window_ms`` for company.  A flushed group executes on the
worker pool as *one* vectorized noisy release: the data-plane work
(scan, clip, bin counts, candidate utilities) happens once per group,
then each member draws its own noise from its own deterministic stream
and is charged its own two-phase budget reservation.

Determinism contract: a released answer is a pure function of the
server seed, the plan fingerprint, and the per-fingerprint release
ordinal — *never* of batching, worker count, or arrival interleaving.
That is what makes batched and unbatched serving byte-identical under a
fixed seed (pinned by ``tests/test_serve_async.py``).

The per-member noise kernels replicate the audited ``dp_*``
implementations draw for draw (clipping, sensitivity, post-processing,
and rng call order are identical), which the tests pin by running both
against the same seeded generator.

Exit-path invariant: every member that takes an admission slot releases
it through exactly one resolution call, on every path — cache replay,
follower replay, deadline shed, budget rejection, execution error, or
success — so the admission controller's in-flight count always returns
to zero.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.confidentiality.mechanisms import (
    exponential_mechanism,
    laplace_mechanism,
)
from repro.exceptions import DataError, PrivacyBudgetError, ReproError
from repro.serve.admission import REASON_OVERLOAD
from repro.serve.protocol import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED_BUDGET,
    STATUS_REJECTED_INVALID,
    STATUS_REJECTED_OVERLOAD,
    STATUS_REJECTED_RATE,
    STATUS_REJECTED_VERSION,
    SUPPORTED_VERSIONS,
    QueryRequest,
    QueryResult,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.planner import QueryPlan
    from repro.serve.server import QueryServer

#: Quantile candidate-grid size — must match ``dp_quantile``'s default.
N_QUANTILE_CANDIDATES = 100


# -- vectorized release kernels ---------------------------------------------
#
# ``group_stats`` computes everything the data plane knows once per
# coalesced group; ``member_release`` turns those shared statistics into
# one member's noisy answer.  Together they are semantically identical,
# draw for draw, to the audited ``dp_*`` query functions (pinned by
# tests); the vectorization win is that the O(n_rows) work runs once
# for the whole group instead of once per query.

def group_stats(plan: "QueryPlan", table) -> dict:
    """The shared (noise-free) statistics behind every member's release."""
    kind = plan.kind
    if kind == "count":
        return {"n": table.n_rows}
    values = np.asarray(table.column(plan.column), dtype=np.float64) \
        if kind != "histogram" else np.asarray(table.column(plan.column))
    if kind == "histogram":
        # Parallel composition: one record lands in one bin, so counts
        # are shared and each member pays a single ε for the whole
        # histogram (bins arrive sorted and deduplicated by the planner).
        return {"counts": {b: float(np.sum(values == b)) for b in plan.bins}}
    if kind == "mean" and len(values) == 0:
        raise DataError("cannot take the mean of no values")
    clipped = np.clip(values, plan.lower, plan.upper)
    if kind == "sum":
        return {"total": float(clipped.sum()),
                "sensitivity": max(abs(plan.lower), abs(plan.upper))}
    if kind == "mean":
        return {"total": float(clipped.sum()),
                "sensitivity": max(abs(plan.lower), abs(plan.upper)),
                "n": len(values)}
    if kind == "quantile":
        candidates = np.linspace(
            plan.lower, plan.upper, N_QUANTILE_CANDIDATES
        ).tolist()
        target_rank = plan.q * len(clipped)
        utilities = [
            -abs(float(np.sum(clipped <= candidate)) - target_rank)
            for candidate in candidates
        ]
        return {"candidates": candidates, "utilities": utilities}
    raise DataError(f"unplannable kind {kind!r}")  # unreachable


def member_release(stats: dict, plan: "QueryPlan",
                   rng: np.random.Generator) -> float | dict:
    """One member's noisy answer from the group's shared statistics.

    Replicates the corresponding ``dp_*`` function's noise draws exactly
    (same mechanism calls, same order, same post-processing), so a
    batch member's answer is byte-identical to a serial execution with
    the same generator.
    """
    kind, epsilon = plan.kind, plan.epsilon
    if kind == "count":
        return max(0.0, laplace_mechanism(float(stats["n"]), 1.0,
                                          epsilon, rng))
    if kind == "sum":
        return laplace_mechanism(stats["total"], stats["sensitivity"],
                                 epsilon, rng)
    if kind == "mean":
        half = epsilon / 2.0
        noisy_sum = laplace_mechanism(stats["total"], stats["sensitivity"],
                                      half, rng)
        noisy_count = max(0.0, laplace_mechanism(float(stats["n"]), 1.0,
                                                 half, rng))
        if noisy_count < 1.0:
            noisy_count = 1.0
        return float(np.clip(noisy_sum / noisy_count,
                             plan.lower, plan.upper))
    if kind == "quantile":
        return float(exponential_mechanism(
            stats["candidates"], stats["utilities"],
            sensitivity=1.0, epsilon=epsilon, rng=rng,
        ))
    if kind == "histogram":
        return {
            bin_value: max(0.0, laplace_mechanism(count, 1.0, epsilon, rng))
            for bin_value, count in stats["counts"].items()
        }
    raise DataError(f"unplannable kind {kind!r}")  # unreachable


# -- dispatch ----------------------------------------------------------------

@dataclass
class _Member:
    """One submitted request's journey through the dispatch loop."""

    request: QueryRequest | dict
    future: Future
    arrival: float                    # time.monotonic() at submission
    wall_start: float                 # time.perf_counter() at submission
    started: object = None            # obs clock tick (or None)
    telemetry: object = None          # obs handle captured at submission
    tenant: str = ""
    plan: "QueryPlan | None" = None
    admitted: bool = False
    deadline_s: float | None = None   # absolute monotonic deadline


class Dispatcher:
    """The asyncio front end: admission, coalescing, flush, resolution.

    All batching state (``_groups``, ``_flights``, the flush timer) is
    touched only from the loop thread, so it needs no locks; the
    outstanding-request counter is the one cross-thread structure,
    guarded by a condition variable that also backs :meth:`drain` and
    the bounded-queue backpressure check.
    """

    def __init__(self, server: "QueryServer"):
        self._server = server
        self._config = server.config
        self._window_s = server.config.batch_window_ms / 1000.0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._start_lock = threading.Lock()
        self._cond = threading.Condition()
        self._outstanding = 0
        # Loop-thread-only state:
        self._groups: dict[tuple, list[_Member]] = {}
        self._flights: dict[object, list[_Member]] = {}
        self._timer: asyncio.TimerHandle | None = None

    # -- lifecycle ----------------------------------------------------------

    def ensure_started(self) -> None:
        if self._started.is_set():
            return
        with self._start_lock:
            if self._started.is_set():
                return
            self._loop = asyncio.new_event_loop()
            self._thread = threading.Thread(
                target=self._run, name="repro-serve-loop", daemon=True
            )
            self._thread.start()
            self._started.wait()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def stop(self) -> None:
        with self._start_lock:
            if not self._started.is_set() or self._loop is None:
                return
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10.0)

    # -- backpressure accounting --------------------------------------------

    def try_reserve_slot(self) -> bool:
        """Take one bounded-queue slot, or refuse (shed at submission)."""
        with self._cond:
            if self._outstanding >= self._config.max_queue_depth:
                return False
            self._outstanding += 1
            return True

    def _release_slot(self) -> None:
        with self._cond:
            self._outstanding -= 1
            if self._outstanding <= 0:
                self._cond.notify_all()

    @property
    def outstanding(self) -> int:
        """Requests admitted to the queue and not yet resolved."""
        with self._cond:
            return self._outstanding

    def drain(self, timeout: float | None = None) -> None:
        """Flush pending batch windows and wait until nothing is in flight."""
        if self._started.is_set() and self._loop is not None:
            self._loop.call_soon_threadsafe(self._force_flush)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._outstanding > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise DataError(
                            f"drain timed out with {self._outstanding} "
                            "request(s) outstanding"
                        )
                # Re-flush periodically: a failed leader's followers are
                # redispatched into fresh batch windows mid-drain.
                self._cond.wait(timeout=min(
                    0.05 if remaining is None else remaining,
                    max(self._window_s, 0.005),
                ))
                if self._outstanding > 0 and self._loop is not None:
                    self._loop.call_soon_threadsafe(self._force_flush)

    # -- submission (any thread → loop thread) ------------------------------

    def enqueue(self, members: list[_Member]) -> None:
        """Hand submitted members to the loop (one wakeup per chunk)."""
        self.ensure_started()
        self._loop.call_soon_threadsafe(self._admit_many, members)

    # -- loop-thread admission ----------------------------------------------

    def _admit_many(self, members: list[_Member]) -> None:
        for member in members:
            self._admit(member)

    def _admit(self, member: _Member) -> None:
        server = self._server
        try:
            request = member.request
            if isinstance(request, dict):
                request = QueryRequest.from_dict(request)
                member.request = request
            if request.version not in SUPPORTED_VERSIONS:
                self._resolve(member, server._rejection(
                    request, STATUS_REJECTED_VERSION,
                    f"unsupported protocol version {request.version!r}; "
                    f"supported: {list(SUPPORTED_VERSIONS)}",
                ))
                return
            tenant = str(request.tenant)
            member.tenant = tenant
            if server.admission is not None:
                reason = server.admission.try_admit(tenant)
                if reason is not None:
                    status = (STATUS_REJECTED_OVERLOAD
                              if reason == REASON_OVERLOAD
                              else STATUS_REJECTED_RATE)
                    self._resolve(member, server._rejection(
                        request, status, f"admission refused: {reason}"
                    ))
                    return
                member.admitted = True
            plan = server.planner.plan(request)
            member.plan = plan
            server._ensure_tenant(tenant)
            deadline_ms = (request.deadline_ms
                           if request.deadline_ms is not None
                           else self._config.default_deadline_ms)
            if deadline_ms is not None:
                member.deadline_s = member.arrival + deadline_ms / 1000.0
            if server.cache is not None:
                answer = server.cache.get(plan.fingerprint, tenant=tenant)
                if answer is not None:
                    # Early cache-replay exit: free post-processing —
                    # and _resolve still gives back the admission slot.
                    self._resolve(member, QueryResult(
                        tenant=tenant, status=STATUS_OK,
                        value=answer.replay(), epsilon_charged=0.0,
                        cached=True, fingerprint=plan.fingerprint,
                        request_id=request.request_id,
                    ))
                    return
                flight_key = self._flight_key(member)
                followers = self._flights.get(flight_key)
                if followers is not None:
                    # A release with this exact fingerprint is already
                    # pending or executing: coalesce and replay it.
                    followers.append(member)
                    server._note(coalesced=1)
                    return
                self._flights[flight_key] = []
            self._enqueue_member(member)
        except ReproError as error:
            self._resolve(member, server._rejection(
                member.request, STATUS_REJECTED_INVALID, str(error)
            ))
        except Exception as error:  # the loop must never leak an exception
            self._resolve(member, server._rejection(
                member.request, STATUS_ERROR,
                f"{type(error).__name__}: {error}",
            ))

    def _flight_key(self, member: _Member) -> object:
        if self._server.cache is not None and \
                self._server.cache.scope == "tenant":
            return (member.tenant, member.plan.fingerprint)
        return member.plan.fingerprint

    def _enqueue_member(self, member: _Member) -> None:
        key = member.plan.group_key
        group = self._groups.setdefault(key, [])
        group.append(member)
        if self._window_s == 0.0 or len(group) >= self._config.max_batch:
            del self._groups[key]
            self._dispatch_group(group)
            return
        if self._timer is None:
            self._timer = self._loop.call_later(
                self._window_s, self._flush_timer
            )

    def _flush_timer(self) -> None:
        self._timer = None
        self._flush_all()

    def _force_flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._flush_all()

    def _flush_all(self) -> None:
        groups = list(self._groups.values())
        self._groups.clear()
        for group in groups:
            self._dispatch_group(group)

    def _dispatch_group(self, group: list[_Member]) -> None:
        self._server._note(batches=1, batched_queries=len(group),
                           largest_batch=len(group))
        try:
            self._server._pool.submit(self._execute_group, group)
        except RuntimeError as error:  # pool shut down mid-flight
            for member in group:
                self._abandon(member, STATUS_ERROR,
                              f"RuntimeError: {error}")

    # -- worker-thread execution --------------------------------------------

    def _execute_group(self, group: list[_Member]) -> None:
        server = self._server
        payers: list[tuple[_Member, object]] = []
        for member in group:
            plan = member.plan
            try:
                now = time.monotonic()
                if member.deadline_s is not None and now > member.deadline_s:
                    server._note(shed_deadline=1)
                    self._finish_release(member, server._rejection(
                        member.request, STATUS_REJECTED_OVERLOAD,
                        "deadline exceeded after "
                        f"{(now - member.arrival) * 1000.0:.1f} ms",
                    ))
                    continue
                try:
                    reservation = server.budget.reserve(
                        member.tenant, plan.epsilon, plan.delta
                    )
                except PrivacyBudgetError as error:
                    self._finish_release(member, QueryResult(
                        tenant=member.tenant, status=STATUS_REJECTED_BUDGET,
                        detail=str(error), fingerprint=plan.fingerprint,
                        request_id=member.request.request_id,
                    ))
                    continue
                payers.append((member, reservation))
            except Exception as error:
                self._finish_release(member, server._rejection(
                    member.request, STATUS_ERROR,
                    f"{type(error).__name__}: {error}",
                ))
        if not payers:
            return

        try:
            values = server._execute_batch([m.plan for m, _ in payers])
        except Exception as error:
            status, detail = (
                (STATUS_REJECTED_INVALID, str(error))
                if isinstance(error, ReproError)
                else (STATUS_ERROR, f"{type(error).__name__}: {error}")
            )
            for member, reservation in payers:
                server.budget.rollback(reservation)
                self._finish_release(member, server._rejection(
                    member.request, status, detail
                ))
            return

        for (member, reservation), value in zip(payers, values):
            plan = member.plan
            try:
                server.budget.commit(reservation,
                                     label=f"serve.{plan.kind}")
            except PrivacyBudgetError as error:
                # Out-of-band spending beat us to the ledger between
                # reserve and commit; the answer is discarded unreleased.
                server.budget.rollback(reservation)
                self._finish_release(member, QueryResult(
                    tenant=member.tenant, status=STATUS_REJECTED_BUDGET,
                    detail=str(error), fingerprint=plan.fingerprint,
                    request_id=member.request.request_id,
                ))
                continue
            if server.cache is not None:
                server.cache.put(plan.fingerprint, value, plan.epsilon,
                                 tenant=member.tenant)
            self._finish_release(member, QueryResult(
                tenant=member.tenant, status=STATUS_OK, value=value,
                epsilon_charged=plan.epsilon, cached=False,
                fingerprint=plan.fingerprint,
                request_id=member.request.request_id,
            ), value=value)

    def _finish_release(self, member: _Member, result: QueryResult,
                        value: object = None) -> None:
        """Resolve a payer and settle its coalesced followers."""
        self._resolve(member, result)
        if self._server.cache is None:
            return
        flight_key = self._flight_key(member)
        self._loop.call_soon_threadsafe(
            self._settle_flight, flight_key, member.plan,
            result.status == STATUS_OK, value,
        )

    def _settle_flight(self, flight_key: object, plan, ok: bool,
                       value: object) -> None:
        followers = self._flights.pop(flight_key, None)
        if not followers:
            return
        if ok:
            for follower in followers:
                copied = dict(value) if isinstance(value, dict) else value
                self._resolve(follower, QueryResult(
                    tenant=follower.tenant, status=STATUS_OK, value=copied,
                    epsilon_charged=0.0, cached=True,
                    fingerprint=plan.fingerprint,
                    request_id=follower.request.request_id,
                ))
            return
        # The leader failed (shed, broke, or errored): the first
        # follower leads a fresh release, the rest re-coalesce onto it.
        for follower in followers:
            self._readmit(follower)

    def _readmit(self, member: _Member) -> None:
        server = self._server
        try:
            plan = member.plan
            answer = server.cache.get(plan.fingerprint, tenant=member.tenant)
            if answer is not None:
                self._resolve(member, QueryResult(
                    tenant=member.tenant, status=STATUS_OK,
                    value=answer.replay(), epsilon_charged=0.0, cached=True,
                    fingerprint=plan.fingerprint,
                    request_id=member.request.request_id,
                ))
                return
            flight_key = self._flight_key(member)
            followers = self._flights.get(flight_key)
            if followers is not None:
                followers.append(member)
                return
            self._flights[flight_key] = []
            self._enqueue_member(member)
        except Exception as error:
            self._resolve(member, server._rejection(
                member.request, STATUS_ERROR,
                f"{type(error).__name__}: {error}",
            ))

    # -- resolution (the one exit point) -------------------------------------

    def _resolve(self, member: _Member, result: QueryResult) -> None:
        server = self._server
        if member.admitted:
            member.admitted = False
            server.admission.release(member.tenant)
        result.duration = time.perf_counter() - member.wall_start
        member.future.set_result(result)
        self._release_slot()
        server._record_member(member, result)

    def _abandon(self, member: _Member, status: str, detail: str) -> None:
        self._resolve(member, self._server._rejection(
            member.request, status, detail
        ))
