"""The serving wire protocol: requests in, structured results out.

A :class:`QueryRequest` is what a tenant submits — a declarative
description of one DP aggregate over a registered table.  A
:class:`QueryResult` is what always comes back: the server never lets an
exception escape its loop, so rejections (budget, rate, overload,
validation, protocol version) are *statuses* on the result, not stack
traces in the caller's lap.

Both sides round-trip through plain dicts / JSON lines, which is what
``python -m repro serve`` speaks.  The wire format is versioned: a
record carrying no ``version`` field is a v1 record (every line written
before versioning existed parses unchanged), a record carrying a version
the server does not speak is rejected with
:data:`STATUS_REJECTED_VERSION` instead of being misinterpreted, and
``to_dict`` omits ``version`` when it is 1 so old readers keep seeing
the exact shape they always did.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

from repro.exceptions import DataError

#: Query kinds the planner understands.
KINDS = ("count", "sum", "mean", "quantile", "histogram")

#: The protocol version this server speaks (and the implied version of
#: any wire record that does not carry one).
PROTOCOL_VERSION = 1

#: Versions the server accepts; anything else is a structured rejection.
SUPPORTED_VERSIONS = (1,)

#: Result statuses — one success, one per rejection reason, one catch-all.
STATUS_OK = "ok"
STATUS_REJECTED_INVALID = "rejected_invalid"
STATUS_REJECTED_BUDGET = "rejected_budget"
STATUS_REJECTED_RATE = "rejected_rate"
STATUS_REJECTED_OVERLOAD = "rejected_overload"
STATUS_REJECTED_VERSION = "rejected_version"
STATUS_ERROR = "error"

STATUSES = (
    STATUS_OK,
    STATUS_REJECTED_INVALID,
    STATUS_REJECTED_BUDGET,
    STATUS_REJECTED_RATE,
    STATUS_REJECTED_OVERLOAD,
    STATUS_REJECTED_VERSION,
    STATUS_ERROR,
)


@dataclass(frozen=True)
class QueryRequest:
    """One tenant's declarative DP query.

    ``table`` may be omitted when the server has exactly one registered
    table.  Numeric aggregates (``sum``/``mean``/``quantile``) require
    declared ``lower``/``upper`` bounds — sensitivity comes from the
    declaration, never from peeking at the data.

    ``deadline_ms`` is the tenant's latency budget: a request still
    waiting when it expires is shed with
    :data:`STATUS_REJECTED_OVERLOAD` instead of being answered late
    (and, being shed before execution, costs no ε).  ``version`` is the
    wire protocol version; omit it (or pass 1) for the current protocol.
    """

    tenant: str
    kind: str
    epsilon: float
    table: str | None = None
    column: str | None = None
    lower: float | None = None
    upper: float | None = None
    q: float | None = None
    bins: tuple = ()
    delta: float = 0.0
    request_id: str | None = None
    version: int = PROTOCOL_VERSION
    deadline_ms: float | None = None

    @classmethod
    def from_dict(cls, record: dict) -> "QueryRequest":
        """Build a request from one decoded JSONL record.

        A record with no ``version`` field is a v1 record — the format
        predating versioning parses unchanged.
        """
        if not isinstance(record, dict):
            raise DataError(f"request must be an object, got {type(record).__name__}")
        unknown = set(record) - {f.name for f in fields(cls)}
        if unknown:
            raise DataError(f"unknown request fields: {sorted(unknown)}")
        for required in ("tenant", "kind", "epsilon"):
            if required not in record:
                raise DataError(f"request is missing {required!r}")
        record = dict(record)
        record["bins"] = tuple(record.get("bins") or ())
        record.setdefault("version", PROTOCOL_VERSION)
        return cls(**record)

    def to_dict(self) -> dict:
        """JSON-ready record (omits unset optionals and ``version`` 1)."""
        record = asdict(self)
        record["bins"] = list(record["bins"])
        if record.get("version") == PROTOCOL_VERSION:
            del record["version"]  # wire back-compat: v1 is implied
        return {
            key: value for key, value in record.items()
            if value not in (None, []) or key in ("tenant", "kind", "epsilon")
        }


@dataclass
class QueryResult:
    """The server's answer to one request — success or structured rejection.

    ``epsilon_charged`` is what the tenant's ledger actually paid: the
    plan's ε on a fresh execution, ``0.0`` on a cache replay or any
    rejection.  ``value`` is a float for scalar queries, a ``{bin:
    count}`` dict for histograms, and ``None`` on rejection.
    """

    tenant: str
    status: str
    value: float | dict | None = None
    epsilon_charged: float = 0.0
    cached: bool = False
    fingerprint: str | None = None
    detail: str | None = None
    request_id: str | None = None
    duration: float | None = None
    attributes: dict = field(default_factory=dict)
    version: int = PROTOCOL_VERSION

    @property
    def ok(self) -> bool:
        """Did the query produce an answer?"""
        return self.status == STATUS_OK

    def to_dict(self) -> dict:
        """JSON-ready record (the ``serve`` CLI's response line)."""
        record = {
            "tenant": self.tenant,
            "status": self.status,
            "value": self.value,
            "epsilon_charged": self.epsilon_charged,
            "cached": self.cached,
        }
        if self.version != PROTOCOL_VERSION:
            record["version"] = self.version
        if self.fingerprint is not None:
            record["fingerprint"] = self.fingerprint
        if self.detail is not None:
            record["detail"] = self.detail
        if self.request_id is not None:
            record["request_id"] = self.request_id
        if self.duration is not None:
            record["duration"] = self.duration
        return record
