"""The multi-tenant DP query server.

``QueryServer`` turns the one-shot ``dp_*`` query library into an
operational surface: tables and tenants are registered once, then
requests flow through a fixed pipeline —

    admission → plan → cache lookup → budget reserve → execute
              → budget commit → cache insert

with three invariants the tests pin down:

* **no exception escapes the serving loop** — every failure mode is a
  structured :class:`~repro.serve.protocol.QueryResult` status;
* **a rejected query never burns budget** — charges are speculative
  (:class:`~repro.serve.budget.BudgetManager`) until the answer exists;
* **a repeated query costs nothing** — cache replays are free
  post-processing and charge ε exactly zero.

Execution reuses the audited ``dp_*`` implementations verbatim (their
clipping, sensitivity, and post-processing are the privacy-critical
code): each query runs against a throwaway scratch accountant, and the
*real* tenant charge is the committed reservation.

Concurrency: a bounded ``ThreadPoolExecutor`` drains batches; every
shared structure (accountants, budget manager, cache, admission,
telemetry) is individually thread-safe, and per-query RNGs are spawned
from one ``SeedSequence`` so concurrent noise draws never share a
bit-generator.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

import numpy as np

from repro import obs
from repro.obs.metrics import Histogram
from repro.confidentiality.accountant import PrivacyAccountant
from repro.confidentiality.queries import (
    dp_count,
    dp_histogram,
    dp_mean,
    dp_quantile,
    dp_sum,
)
from repro.data.table import Table
from repro.engine import Executor as PlanExecutor
from repro.exceptions import DataError, PrivacyBudgetError, ReproError
from repro.serve.admission import AdmissionController
from repro.serve.budget import BudgetManager
from repro.serve.cache import AnswerCache
from repro.serve.planner import QueryPlan, QueryPlanner
from repro.serve.protocol import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED_BUDGET,
    STATUS_REJECTED_INVALID,
    STATUS_REJECTED_RATE,
    QueryRequest,
    QueryResult,
)


class QueryServer:
    """Concurrent, budget-aware, cache-accelerated DP query serving."""

    def __init__(self, workers: int = 4, seed: int = 0,
                 cache: AnswerCache | None | bool = True,
                 admission: AdmissionController | None = None,
                 default_epsilon_budget: float | None = None,
                 default_delta_budget: float = 0.0,
                 backend_latency_s: float = 0.0,
                 store=None):
        """Build a server.

        ``cache=True`` installs a default :class:`AnswerCache`;
        ``cache=None``/``False`` disables replay entirely (every query
        pays).  ``default_epsilon_budget`` enables auto-registration of
        unknown tenants (the CLI's mode); without it, queries from
        unregistered tenants are rejected as invalid.
        ``backend_latency_s`` injects a per-execution delay emulating a
        downstream data-plane fetch — benchmarks use it to exercise how
        the worker pool overlaps query latencies; leave it 0 in real use.
        ``store`` (an :class:`~repro.store.ArtifactStore`) makes table
        re-registration invalidate the old rows' ``table:<fingerprint>``
        artifacts via the planner's schema registry.
        """
        if workers < 1:
            raise DataError("workers must be at least 1")
        if backend_latency_s < 0:
            raise DataError("backend_latency_s must be non-negative")
        self.planner = QueryPlanner(store=store)
        self.budget = BudgetManager()
        self.cache = AnswerCache() if cache is True else (cache or None)
        self.admission = admission
        self.workers = int(workers)
        self.default_epsilon_budget = default_epsilon_budget
        self.default_delta_budget = float(default_delta_budget)
        self.backend_latency_s = float(backend_latency_s)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        # Executions run as one-node engine plans; observe=False because
        # the server records its own serve.query spans (concurrent,
        # post-timed), and node-level spans would double-count.
        self._engine = PlanExecutor(n_jobs=1, backend="serial",
                                    name="serve", observe=False)
        self._closed = False
        self._seed_seq = np.random.SeedSequence(seed)
        self._rng_lock = threading.Lock()
        self._obs_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._status_counts: dict[str, int] = {}
        # Always-on latency distribution (independent of repro.obs):
        # stats()["latency"] exports p50/p90/p95/p99 in the same
        # profile shape the bench harness and profiler report.
        self._latency = Histogram("serve.query.duration",
                                  quantiles=(0.50, 0.90, 0.95, 0.99))
        # Single-flight coalescing: concurrent identical queries would
        # each miss the cache and each pay ε; instead followers wait for
        # the leader's release and replay it for free.
        self._flight_lock = threading.Lock()
        self._in_flight: dict[object, threading.Event] = {}

    # -- registration -------------------------------------------------------

    def register_table(self, name: str, table: Table) -> "QueryServer":
        """Make ``table`` servable as ``name`` (chainable)."""
        self.planner.register_table(name, table)
        return self

    def register_dataset(self, dataset) -> "QueryServer":
        """Make every member table of a relational dataset servable."""
        self.planner.register_dataset(dataset)
        return self

    def register_tenant(self, tenant: str,
                        epsilon_budget: float | None = None,
                        delta_budget: float = 0.0,
                        accountant: PrivacyAccountant | None = None,
                        ) -> PrivacyAccountant:
        """Give ``tenant`` a budget — an existing accountant or a fresh one."""
        if accountant is None:
            if epsilon_budget is None:
                raise DataError(
                    "register_tenant needs epsilon_budget or an accountant"
                )
            accountant = PrivacyAccountant(epsilon_budget, delta_budget)
        return self.budget.register(tenant, accountant)

    # -- submission ---------------------------------------------------------

    def query(self, request: QueryRequest | dict) -> QueryResult:
        """Serve one request synchronously (never raises)."""
        return self._handle(request)

    def submit(self, request: QueryRequest | dict) -> Future:
        """Enqueue one request on the worker pool."""
        if self._closed:
            raise DataError("server is closed")
        return self._pool.submit(self._handle, request)

    def submit_batch(self, requests) -> list[QueryResult]:
        """Serve a batch concurrently, preserving request order."""
        if self._closed:
            raise DataError("server is closed")
        return list(self._pool.map(self._handle, list(requests)))

    def close(self) -> None:
        """Drain the pool and refuse further submissions."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the serving loop ---------------------------------------------------

    def _handle(self, request: QueryRequest | dict) -> QueryResult:
        telemetry = obs.get()
        started = self._tick(telemetry)
        wall_start = time.perf_counter()
        admitted_tenant = None
        try:
            if isinstance(request, dict):
                request = QueryRequest.from_dict(request)
            tenant = str(request.tenant)

            if self.admission is not None:
                reason = self.admission.try_admit(tenant)
                if reason is not None:
                    result = self._rejection(
                        request, STATUS_REJECTED_RATE,
                        f"admission refused: {reason}",
                    )
                    return result
                admitted_tenant = tenant

            result = self._serve_admitted(request)
            return result
        except ReproError as error:
            result = self._rejection(request, STATUS_REJECTED_INVALID, str(error))
            return result
        except Exception as error:  # the loop must never leak an exception
            result = self._rejection(
                request, STATUS_ERROR, f"{type(error).__name__}: {error}"
            )
            return result
        finally:
            if admitted_tenant is not None:
                self.admission.release(admitted_tenant)
            result.duration = time.perf_counter() - wall_start
            self._record(telemetry, request, result, started)

    def _serve_admitted(self, request: QueryRequest) -> QueryResult:
        tenant = str(request.tenant)
        plan = self.planner.plan(request)
        self._ensure_tenant(tenant)

        if self.cache is None:
            return self._execute_and_charge(request, plan, tenant)

        flight_key = (
            (tenant, plan.fingerprint) if self.cache.scope == "tenant"
            else plan.fingerprint
        )
        while True:
            answer = self.cache.get(plan.fingerprint, tenant=tenant)
            if answer is not None:
                return QueryResult(
                    tenant=tenant, status=STATUS_OK, value=answer.replay(),
                    epsilon_charged=0.0, cached=True,
                    fingerprint=plan.fingerprint,
                    request_id=request.request_id,
                )
            with self._flight_lock:
                event = self._in_flight.get(flight_key)
                if event is None:
                    self._in_flight[flight_key] = threading.Event()
            if event is None:  # we lead: compute, release, wake followers
                try:
                    return self._execute_and_charge(request, plan, tenant)
                finally:
                    with self._flight_lock:
                        self._in_flight.pop(flight_key).set()
            # A leader is already computing this exact release; wait and
            # re-check the cache (if the leader failed, loop and lead).
            event.wait()

    def _execute_and_charge(self, request: QueryRequest, plan: QueryPlan,
                            tenant: str) -> QueryResult:
        try:
            reservation = self.budget.reserve(tenant, plan.epsilon, plan.delta)
        except PrivacyBudgetError as error:
            return QueryResult(
                tenant=tenant, status=STATUS_REJECTED_BUDGET,
                detail=str(error), fingerprint=plan.fingerprint,
                request_id=request.request_id,
            )
        try:
            value = self._execute(plan)
        except Exception:
            self.budget.rollback(reservation)
            raise
        try:
            self.budget.commit(reservation, label=f"serve.{plan.kind}")
        except PrivacyBudgetError as error:
            # Out-of-band spending beat us to the ledger between reserve
            # and commit; the answer is discarded unreleased.
            self.budget.rollback(reservation)
            return QueryResult(
                tenant=tenant, status=STATUS_REJECTED_BUDGET,
                detail=str(error), fingerprint=plan.fingerprint,
                request_id=request.request_id,
            )
        if self.cache is not None:
            self.cache.put(plan.fingerprint, value, plan.epsilon, tenant=tenant)
        return QueryResult(
            tenant=tenant, status=STATUS_OK, value=value,
            epsilon_charged=plan.epsilon, cached=False,
            fingerprint=plan.fingerprint, request_id=request.request_id,
        )

    def _ensure_tenant(self, tenant: str) -> None:
        if tenant in self.budget:
            return
        if self.default_epsilon_budget is None:
            raise DataError(
                f"unknown tenant {tenant!r} (no default budget configured)"
            )
        try:
            self.register_tenant(
                tenant, self.default_epsilon_budget, self.default_delta_budget
            )
        except DataError:
            # Two workers raced the auto-registration; either one wins.
            if tenant not in self.budget:
                raise

    # -- execution ----------------------------------------------------------

    def _execute(self, plan: QueryPlan) -> float | dict:
        """Compute the noisy answer for ``plan`` (tenant charge happens at commit).

        The query runs as the one-node engine plan it is: the node's
        ``key_parts`` are the release's canonical identity (the same
        digest the answer cache keys on), and the node is uncacheable
        because every execution must draw fresh noise.
        """
        return self._engine.run(plan.as_engine_plan(self._compute)).output

    def _compute(self, plan: QueryPlan) -> float | dict:
        if self.backend_latency_s:
            time.sleep(self.backend_latency_s)
        table = self.planner.table(plan.table)
        rng = self._spawn_rng()
        # The dp_* functions insist on charging an accountant — that is
        # their contract and their tests' contract.  Here the tenant's
        # ledger is charged by the committed reservation instead, so the
        # execution charges a throwaway scratch accountant.
        scratch = PrivacyAccountant(plan.epsilon + 1.0)
        if plan.kind == "count":
            return dp_count(table.n_rows, plan.epsilon, scratch, rng)
        values = table.column(plan.column)
        if plan.kind == "sum":
            return dp_sum(values, plan.lower, plan.upper, plan.epsilon,
                          scratch, rng)
        if plan.kind == "mean":
            return dp_mean(values, plan.lower, plan.upper, plan.epsilon,
                           scratch, rng)
        if plan.kind == "quantile":
            return dp_quantile(values, plan.q, plan.lower, plan.upper,
                               plan.epsilon, scratch, rng)
        if plan.kind == "histogram":
            return dp_histogram(values, list(plan.bins), plan.epsilon,
                                scratch, rng)
        raise DataError(f"unplannable kind {plan.kind!r}")  # unreachable

    def _spawn_rng(self) -> np.random.Generator:
        with self._rng_lock:
            child = self._seed_seq.spawn(1)[0]
        return np.random.default_rng(child)

    # -- rejection / telemetry ----------------------------------------------

    def _rejection(self, request, status: str, detail: str) -> QueryResult:
        tenant = getattr(request, "tenant", None)
        if tenant is None and isinstance(request, dict):
            tenant = request.get("tenant")
        request_id = getattr(request, "request_id", None)
        if request_id is None and isinstance(request, dict):
            request_id = request.get("request_id")
        return QueryResult(
            tenant=str(tenant or "<unknown>"), status=status, detail=detail,
            request_id=request_id,
        )

    def _tick(self, telemetry) -> float | None:
        if telemetry is None:
            return None
        with self._obs_lock:
            return telemetry.clock.now()

    def _record(self, telemetry, request, result: QueryResult,
                started: float | None) -> None:
        with self._stats_lock:
            self._status_counts[result.status] = (
                self._status_counts.get(result.status, 0) + 1
            )
            if result.duration is not None:
                self._latency.observe(result.duration)
        if telemetry is None:
            return
        kind = getattr(request, "kind", None)
        if kind is None and isinstance(request, dict):
            kind = request.get("kind")
        with self._obs_lock:
            end = telemetry.clock.now()
            telemetry.tracer.record_span(
                "serve.query", started, end,
                tenant=result.tenant, kind=str(kind), status=result.status,
                cached=result.cached, epsilon_charged=result.epsilon_charged,
            )
            telemetry.metrics.counter("serve.requests",
                                      status=result.status).inc()
            if self.cache is not None and result.ok:
                name = "serve.cache.hits" if result.cached else "serve.cache.misses"
                telemetry.metrics.counter(name).inc()
            if result.duration is not None:
                telemetry.metrics.histogram("serve.query.duration").observe(
                    result.duration
                )
            if result.tenant in self.budget:
                telemetry.metrics.gauge(
                    "serve.budget.epsilon_remaining", tenant=result.tenant
                ).set(self.budget.remaining(result.tenant))

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Serving counters: statuses, latency percentiles, cache, budgets."""
        with self._stats_lock:
            statuses = dict(self._status_counts)
            latency = (self._latency.summary()
                       if self._latency.count else None)
        tenants = {
            tenant: {
                "epsilon_spent": self.budget.accountant(tenant).epsilon_spent,
                "epsilon_remaining": self.budget.remaining(tenant),
                "ledger_entries": len(self.budget.accountant(tenant).ledger),
            }
            for tenant in self.budget.tenants
        }
        return {
            "statuses": statuses,
            "latency": latency,
            "cache": self.cache.stats() if self.cache is not None else None,
            "tenants": tenants,
        }
