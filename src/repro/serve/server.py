"""The multi-tenant DP query server.

``QueryServer`` turns the one-shot ``dp_*`` query library into an
operational surface: tables and tenants are registered once, then
requests flow through a fixed pipeline —

    admission → plan → cache lookup → **coalesce** → budget reserve
              → vectorized execute → budget commit → cache insert

with the invariants the tests pin down:

* **no exception escapes the serving loop** — every failure mode is a
  structured :class:`~repro.serve.protocol.QueryResult` status;
* **a rejected query never burns budget** — charges are speculative
  (:class:`~repro.serve.budget.BudgetManager`) until the answer exists;
* **a repeated query costs nothing** — cache replays are free
  post-processing and charge ε exactly zero;
* **batching is invisible in the answers** — a release is a pure
  function of (seed, plan fingerprint, release ordinal), so batched and
  unbatched serving are byte-identical under a fixed seed, and every
  coalesced member is charged individually through the same two-phase
  reserve/commit as a serial query.

Architecture: submissions land on an asyncio dispatch loop
(:class:`~repro.serve.batching.Dispatcher`, one daemon thread) that
admits, plans, answers cache hits inline, and coalesces cache misses by
:attr:`~repro.serve.planner.QueryPlan.group_key`; flushed groups
execute on a bounded ``ThreadPoolExecutor`` as one-node engine plans
whose data-plane statistics are computed once per group
(:func:`~repro.serve.batching.group_stats`) while each member draws its
own noise (:func:`~repro.serve.batching.member_release`, replicating
the audited ``dp_*`` semantics draw for draw).  Backpressure is
explicit: a bounded outstanding-request queue sheds at submission and
per-request deadlines shed at execution, both with
``STATUS_REJECTED_OVERLOAD`` and zero ε.

The public surface is :meth:`submit` / :meth:`submit_many` /
:meth:`drain`; :meth:`query` and :meth:`submit_batch` are thin
synchronous wrappers kept for PR2-era callers, and a
:class:`PendingResult` serves sync (``.result()``) and async
(``await``) consumers alike.  Configuration lives in one validated
:class:`~repro.serve.config.ServeConfig`; the historical constructor
kwargs keep working as deprecated aliases.
"""

from __future__ import annotations

import asyncio
import threading
import time
import warnings
from concurrent.futures import Future, ThreadPoolExecutor

import numpy as np

from repro import obs
from repro.obs.metrics import Histogram
from repro.confidentiality.accountant import PrivacyAccountant
from repro.data.table import Table
from repro.engine import Executor as PlanExecutor
from repro.engine import Node, Plan
from repro.exceptions import DataError
from repro.serve.admission import AdmissionController
from repro.serve.batching import Dispatcher, _Member, group_stats, member_release
from repro.serve.budget import BudgetManager
from repro.serve.cache import AnswerCache
from repro.serve.config import ServeConfig
from repro.serve.planner import QueryPlan, QueryPlanner
from repro.serve.protocol import (
    STATUS_REJECTED_OVERLOAD,
    QueryRequest,
    QueryResult,
)


class PendingResult:
    """One submitted query's eventual :class:`QueryResult`.

    Sync callers block on :meth:`result`; async callers ``await`` it
    directly (the future is bridged onto the running event loop).  The
    server resolves it on every path — success, rejection, shed — so it
    always completes and never raises a serving error.
    """

    __slots__ = ("_future",)

    def __init__(self, future: Future):
        self._future = future

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until the answer is served (or ``timeout`` expires)."""
        return self._future.result(timeout)

    def done(self) -> bool:
        """Has the result been resolved yet?"""
        return self._future.done()

    def add_done_callback(self, fn) -> None:
        """Call ``fn(pending)`` once the result resolves."""
        self._future.add_done_callback(lambda _future: fn(self))

    def __await__(self):
        return asyncio.wrap_future(self._future).__await__()


class QueryServer:
    """Async-batched, budget-aware, cache-accelerated DP query serving."""

    def __init__(self, config: ServeConfig | int | None = None, *,
                 admission: AdmissionController | None = None,
                 store=None, **legacy):
        """Build a server from one validated :class:`ServeConfig`.

        ``admission`` injects a pre-built controller (tests drive its
        clock); otherwise one is derived from the config's
        ``rate_limit`` / ``max_inflight`` when either is set.  ``store``
        (an :class:`~repro.store.ArtifactStore`) makes table
        re-registration invalidate the old rows' ``table:<fingerprint>``
        artifacts via the planner's schema registry.

        The historical kwargs (``workers=``, ``seed=``, ``cache=``,
        ``default_epsilon_budget=``, ``default_delta_budget=``,
        ``backend_latency_s=``) keep working as deprecated aliases and
        emit a single :class:`DeprecationWarning` per construction.
        """
        if isinstance(config, int):  # historical positional `workers`
            legacy.setdefault("workers", config)
            config = None
        if config is None:
            config = ServeConfig()
        if legacy:
            config = config.with_legacy_kwargs(**legacy)
            warnings.warn(
                "QueryServer(**kwargs) is deprecated; pass a ServeConfig: "
                f"QueryServer(ServeConfig({', '.join(sorted(legacy))}=...))",
                DeprecationWarning, stacklevel=2,
            )
        self.config = config

        self.planner = QueryPlanner(store=store)
        self.budget = BudgetManager()
        legacy_cache = legacy.get("cache")
        if isinstance(legacy_cache, AnswerCache):
            self.cache: AnswerCache | None = legacy_cache
        elif config.cache:
            self.cache = AnswerCache(max_entries=config.cache_entries,
                                     scope=config.cache_scope)
        else:
            self.cache = None
        if admission is not None:
            self.admission: AdmissionController | None = admission
        elif config.rate_limit is not None or config.max_inflight is not None:
            self.admission = AdmissionController(
                rate_limit=config.rate_limit,
                window_s=config.rate_window_s,
                max_inflight=config.max_inflight,
            )
        else:
            self.admission = None

        self._pool = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="repro-serve"
        )
        # Release groups run as one-node engine plans; observe=False
        # because the server records its own serve.query spans
        # (concurrent, post-timed), and node-level spans would
        # double-count.
        self._engine = PlanExecutor(n_jobs=1, backend="serial",
                                    name="serve", observe=False)
        self._closed = False
        # Deterministic releases: each execution's generator is keyed by
        # (server seed, per-fingerprint release ordinal, fingerprint
        # words), never by arrival order — see _release_rng.
        self._seed_entropy = int(config.seed)
        self._rng_lock = threading.Lock()
        self._release_ordinals: dict[str, int] = {}
        self._obs_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._status_counts: dict[str, int] = {}
        self._batch_stats = {
            "batches": 0, "batched_queries": 0, "largest_batch": 0,
            "coalesced": 0, "shed_deadline": 0, "shed_queue": 0,
        }
        # Always-on latency distribution (independent of repro.obs):
        # stats()["latency"] exports p50/p90/p95/p99 in the same
        # profile shape the bench harness and profiler report.
        self._latency = Histogram("serve.query.duration",
                                  quantiles=(0.50, 0.90, 0.95, 0.99))
        self._dispatcher = Dispatcher(self)

    # -- legacy attribute aliases -------------------------------------------

    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def default_epsilon_budget(self) -> float | None:
        return self.config.default_epsilon_budget

    @property
    def default_delta_budget(self) -> float:
        return self.config.default_delta_budget

    @property
    def backend_latency_s(self) -> float:
        return self.config.backend_latency_s

    # -- registration -------------------------------------------------------

    def register_table(self, name: str, table: Table) -> "QueryServer":
        """Make ``table`` servable as ``name`` (chainable)."""
        self.planner.register_table(name, table)
        return self

    def register_dataset(self, dataset) -> "QueryServer":
        """Make every member table of a relational dataset servable."""
        self.planner.register_dataset(dataset)
        return self

    def register_tenant(self, tenant: str,
                        epsilon_budget: float | None = None,
                        delta_budget: float = 0.0,
                        accountant: PrivacyAccountant | None = None,
                        ) -> PrivacyAccountant:
        """Give ``tenant`` a budget — an existing accountant or a fresh one."""
        if accountant is None:
            if epsilon_budget is None:
                raise DataError(
                    "register_tenant needs epsilon_budget or an accountant"
                )
            accountant = PrivacyAccountant(epsilon_budget, delta_budget)
        return self.budget.register(tenant, accountant)

    # -- submission: the public surface -------------------------------------

    def submit(self, request: QueryRequest | dict) -> PendingResult:
        """Enqueue one request; returns immediately with a :class:`PendingResult`.

        When the bounded queue (``config.max_queue_depth`` admitted and
        unresolved requests) is full, the request is shed *here* with
        ``STATUS_REJECTED_OVERLOAD`` — the pending result resolves
        instantly and no ε is spent.
        """
        return self._submit_chunk([request])[0]

    def submit_many(self, requests) -> list[PendingResult]:
        """Enqueue a batch in one dispatcher wakeup, preserving order.

        This is the throughput path: the whole chunk crosses the thread
        boundary once, and compatible queries coalesce into vectorized
        releases on the loop.
        """
        return self._submit_chunk(list(requests))

    def drain(self, timeout: float | None = None) -> None:
        """Flush open batch windows and block until nothing is in flight."""
        self._dispatcher.drain(timeout)

    # -- thin synchronous wrappers (the PR2-era surface) ---------------------

    def query(self, request: QueryRequest | dict) -> QueryResult:
        """Serve one request synchronously (never raises a serving error).

        Wrapper: ``submit(request).result()``.
        """
        return self._submit_chunk([request])[0].result()

    def submit_batch(self, requests) -> list[QueryResult]:
        """Serve a batch, preserving request order.

        Wrapper: ``[p.result() for p in submit_many(requests)]``.
        """
        return [pending.result() for pending in self.submit_many(requests)]

    def close(self) -> None:
        """Drain in-flight work, stop the loop, refuse further submissions."""
        if self._closed:
            return
        self._closed = True
        try:
            self._dispatcher.drain()
        finally:
            self._dispatcher.stop()
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _submit_chunk(self, requests: list) -> list[PendingResult]:
        if self._closed:
            raise DataError("server is closed")
        telemetry = obs.get()
        pending: list[PendingResult] = []
        members: list[_Member] = []
        for request in requests:
            future: Future = Future()
            member = _Member(
                request=request, future=future,
                arrival=time.monotonic(), wall_start=time.perf_counter(),
                started=self._tick(telemetry), telemetry=telemetry,
            )
            pending.append(PendingResult(future))
            if not self._dispatcher.try_reserve_slot():
                self._note(shed_queue=1)
                result = self._rejection(
                    request, STATUS_REJECTED_OVERLOAD,
                    f"queue depth {self.config.max_queue_depth} exceeded",
                )
                result.duration = time.perf_counter() - member.wall_start
                future.set_result(result)
                self._record_member(member, result)
                continue
            members.append(member)
        if members:
            self._dispatcher.enqueue(members)
        return pending

    # -- tenancy -------------------------------------------------------------

    def _ensure_tenant(self, tenant: str) -> None:
        if tenant in self.budget:
            return
        if self.config.default_epsilon_budget is None:
            raise DataError(
                f"unknown tenant {tenant!r} (no default budget configured)"
            )
        try:
            self.register_tenant(
                tenant,
                self.config.default_epsilon_budget,
                self.config.default_delta_budget,
            )
        except DataError:
            # Two submissions raced the auto-registration; either wins.
            if tenant not in self.budget:
                raise

    # -- execution ----------------------------------------------------------

    def _execute_batch(self, plans: list[QueryPlan]) -> list:
        """Run one coalesced release group as a one-node engine plan.

        Every plan in the group shares a
        :attr:`~repro.serve.planner.QueryPlan.group_key`, so the
        data-plane statistics are computed once; each member then draws
        its own noise from its own deterministic stream.  The node's
        ``key_parts`` are the group's canonical identity and the node is
        uncacheable — every execution must draw fresh noise (*answer*
        replay is the :class:`AnswerCache`'s job, governed by budget
        semantics).
        """
        template = plans[0]
        rngs = [self._release_rng(plan.fingerprint) for plan in plans]

        def compute(inputs, rng):
            if self.config.backend_latency_s:
                time.sleep(self.config.backend_latency_s)
            table = self.planner.table(template.table)
            stats = group_stats(template, table)
            return [member_release(stats, plan, member_rng)
                    for plan, member_rng in zip(plans, rngs)]

        node = Node(
            f"query:{template.kind}", compute,
            key_parts=template.key_parts(), cacheable=False,
            label=f"query:{template.kind}[{len(plans)}]",
        )
        return self._engine.run(Plan([node])).output

    def _release_rng(self, fingerprint: str) -> np.random.Generator:
        """The deterministic noise stream for one release execution.

        Keyed by (server seed, per-fingerprint release ordinal, the
        fingerprint itself) — a pure function of *what* is being
        released and *how many times* it has been released, never of
        batching, worker count, or arrival interleaving.  With the
        answer cache on, a fingerprint executes once (ordinal 0), which
        is what makes batched and serial serving byte-identical.
        """
        with self._rng_lock:
            ordinal = self._release_ordinals.get(fingerprint, 0)
            self._release_ordinals[fingerprint] = ordinal + 1
        words = [int(fingerprint[i:i + 8], 16)
                 for i in range(0, len(fingerprint), 8)]
        return np.random.default_rng(
            np.random.SeedSequence([self._seed_entropy, ordinal, *words])
        )

    # -- rejection / telemetry ----------------------------------------------

    def _rejection(self, request, status: str, detail: str) -> QueryResult:
        tenant = getattr(request, "tenant", None)
        if tenant is None and isinstance(request, dict):
            tenant = request.get("tenant")
        request_id = getattr(request, "request_id", None)
        if request_id is None and isinstance(request, dict):
            request_id = request.get("request_id")
        return QueryResult(
            tenant=str(tenant or "<unknown>"), status=status, detail=detail,
            request_id=request_id,
        )

    def _tick(self, telemetry) -> float | None:
        if telemetry is None:
            return None
        with self._obs_lock:
            return telemetry.clock.now()

    def _note(self, **counts) -> None:
        """Bump batching/backpressure counters (``largest_batch`` is a max)."""
        with self._stats_lock:
            for name, amount in counts.items():
                if name == "largest_batch":
                    if amount > self._batch_stats["largest_batch"]:
                        self._batch_stats["largest_batch"] = amount
                else:
                    self._batch_stats[name] += amount

    def _record_member(self, member: _Member, result: QueryResult) -> None:
        self._record(member.telemetry, member.request, result, member.started)

    def _record(self, telemetry, request, result: QueryResult,
                started: float | None) -> None:
        with self._stats_lock:
            self._status_counts[result.status] = (
                self._status_counts.get(result.status, 0) + 1
            )
            if result.duration is not None:
                self._latency.observe(result.duration)
        if telemetry is None:
            return
        kind = getattr(request, "kind", None)
        if kind is None and isinstance(request, dict):
            kind = request.get("kind")
        with self._obs_lock:
            end = telemetry.clock.now()
            telemetry.tracer.record_span(
                "serve.query", started, end,
                tenant=result.tenant, kind=str(kind), status=result.status,
                cached=result.cached, epsilon_charged=result.epsilon_charged,
            )
            telemetry.metrics.counter("serve.requests",
                                      status=result.status).inc()
            if self.cache is not None and result.ok:
                name = "serve.cache.hits" if result.cached else "serve.cache.misses"
                telemetry.metrics.counter(name).inc()
            if result.duration is not None:
                telemetry.metrics.histogram("serve.query.duration").observe(
                    result.duration
                )
            if result.tenant in self.budget:
                telemetry.metrics.gauge(
                    "serve.budget.epsilon_remaining", tenant=result.tenant
                ).set(self.budget.remaining(result.tenant))

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Serving counters: statuses, latency, batching, cache, budgets."""
        with self._stats_lock:
            statuses = dict(self._status_counts)
            batching = dict(self._batch_stats)
            latency = (self._latency.summary()
                       if self._latency.count else None)
        tenants = {
            tenant: {
                "epsilon_spent": self.budget.accountant(tenant).epsilon_spent,
                "epsilon_remaining": self.budget.remaining(tenant),
                "ledger_entries": len(self.budget.accountant(tenant).ledger),
            }
            for tenant in self.budget.tenants
        }
        return {
            "statuses": statuses,
            "latency": latency,
            "batching": batching,
            "outstanding": self._dispatcher.outstanding,
            "cache": self.cache.stats() if self.cache is not None else None,
            "tenants": tenants,
        }
