"""``repro.serve`` — multi-tenant DP query serving (Q3, operationalised).

The paper's Q3 asks for answers "without revealing secrets" under a
strict privacy budget; the ROADMAP asks for a system that serves heavy
traffic.  This package is where the two meet: registered tables, tenants
with budgets, admission control with backpressure, an asyncio dispatch
loop that **coalesces compatible queries into vectorized noisy
releases**, and a DP answer cache that replays released answers at zero
additional ε-cost.  Batching never changes an answer: releases are
deterministic in (seed, fingerprint, release ordinal), so batched and
unbatched serving are byte-identical under a fixed seed.

Minimal use::

    from repro.serve import QueryRequest, QueryServer, ServeConfig

    server = QueryServer(ServeConfig(workers=4, batch_window_ms=2.0))
    server.register_table("census", table)
    server.register_tenant("analyst", epsilon_budget=1.0)
    result = server.query(QueryRequest(
        tenant="analyst", kind="mean", column="age",
        lower=18, upper=80, epsilon=0.1,
    ))

The one public submission surface (sync and async callers alike)::

    pending = server.submit(request)          # -> PendingResult
    many = server.submit_many(requests)       # one dispatcher wakeup
    server.drain()                            # flush windows, settle all
    answer = pending.result()                 # sync; or `await pending`

``query`` and ``submit_batch`` are thin wrappers over the same path
(what ``python -m repro serve`` and PR2-era callers use).
"""

from repro.serve.admission import (
    REASON_OVERLOAD,
    REASON_RATE,
    AdmissionController,
)
from repro.serve.budget import BudgetManager, Reservation
from repro.serve.cache import AnswerCache, CachedAnswer
from repro.serve.config import ServeConfig
from repro.serve.planner import QueryPlan, QueryPlanner
from repro.serve.protocol import (
    KINDS,
    PROTOCOL_VERSION,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED_BUDGET,
    STATUS_REJECTED_INVALID,
    STATUS_REJECTED_OVERLOAD,
    STATUS_REJECTED_RATE,
    STATUS_REJECTED_VERSION,
    STATUSES,
    SUPPORTED_VERSIONS,
    QueryRequest,
    QueryResult,
)
from repro.serve.server import PendingResult, QueryServer

__all__ = [
    "AdmissionController",
    "AnswerCache",
    "BudgetManager",
    "CachedAnswer",
    "KINDS",
    "PROTOCOL_VERSION",
    "PendingResult",
    "QueryPlan",
    "QueryPlanner",
    "QueryRequest",
    "QueryResult",
    "QueryServer",
    "REASON_OVERLOAD",
    "REASON_RATE",
    "Reservation",
    "STATUSES",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_REJECTED_BUDGET",
    "STATUS_REJECTED_INVALID",
    "STATUS_REJECTED_OVERLOAD",
    "STATUS_REJECTED_RATE",
    "STATUS_REJECTED_VERSION",
    "SUPPORTED_VERSIONS",
    "ServeConfig",
]
