"""``repro.serve`` — multi-tenant DP query serving (Q3, operationalised).

The paper's Q3 asks for answers "without revealing secrets" under a
strict privacy budget; the ROADMAP asks for a system that serves heavy
traffic.  This package is where the two meet: registered tables, tenants
with budgets, admission control, a bounded worker pool, and a DP answer
cache that replays released answers at zero additional ε-cost.

Minimal use::

    from repro.serve import QueryRequest, QueryServer

    server = QueryServer(workers=4)
    server.register_table("census", table)
    server.register_tenant("analyst", epsilon_budget=1.0)
    result = server.query(QueryRequest(
        tenant="analyst", kind="mean", column="age",
        lower=18, upper=80, epsilon=0.1,
    ))

Batch mode (what ``python -m repro serve`` wraps)::

    results = server.submit_batch(requests)   # concurrent, order-preserving
"""

from repro.serve.admission import (
    REASON_OVERLOAD,
    REASON_RATE,
    AdmissionController,
)
from repro.serve.budget import BudgetManager, Reservation
from repro.serve.cache import AnswerCache, CachedAnswer
from repro.serve.planner import QueryPlan, QueryPlanner
from repro.serve.protocol import (
    KINDS,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED_BUDGET,
    STATUS_REJECTED_INVALID,
    STATUS_REJECTED_RATE,
    STATUSES,
    QueryRequest,
    QueryResult,
)
from repro.serve.server import QueryServer

__all__ = [
    "AdmissionController",
    "AnswerCache",
    "BudgetManager",
    "CachedAnswer",
    "KINDS",
    "QueryPlan",
    "QueryPlanner",
    "QueryRequest",
    "QueryResult",
    "QueryServer",
    "REASON_OVERLOAD",
    "REASON_RATE",
    "Reservation",
    "STATUSES",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_REJECTED_BUDGET",
    "STATUS_REJECTED_INVALID",
    "STATUS_REJECTED_RATE",
]
