"""``ServeConfig``: the one validated description of a query server.

The server's tunables grew up scattered across four constructors —
rate limits on :class:`~repro.serve.admission.AdmissionController`,
capacity and scope on :class:`~repro.serve.cache.AnswerCache`, worker
count and default budgets on :class:`~repro.serve.server.QueryServer` —
so standing up two identical servers meant repeating half a dozen
kwargs and hoping none drifted.  ``ServeConfig`` collapses them into a
single frozen dataclass, validated at construction, that *is* an
:class:`~repro.store.Artifact`: ``config.fingerprint()`` is a canonical
content hash, so a deployment can record exactly which serving
configuration produced a response log.

The legacy ``QueryServer(workers=..., seed=..., ...)`` kwargs keep
working as deprecated aliases (one :class:`DeprecationWarning` per
construction) via :meth:`ServeConfig.with_legacy_kwargs`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.exceptions import DataError
from repro.serve.cache import SCOPE_GLOBAL, SCOPE_TENANT, AnswerCache
from repro.store.artifact import Artifact

#: Legacy ``QueryServer`` constructor kwargs and the ``ServeConfig``
#: field each one maps onto.
LEGACY_KWARG_FIELDS = {
    "workers": "workers",
    "seed": "seed",
    "default_epsilon_budget": "default_epsilon_budget",
    "default_delta_budget": "default_delta_budget",
    "backend_latency_s": "backend_latency_s",
}


@dataclass(frozen=True)
class ServeConfig(Artifact):
    """Every server tunable in one validated, fingerprintable place.

    Execution: ``workers`` threads drain coalesced batches; ``seed``
    roots the deterministic per-release noise streams.

    Batching: requests that miss the answer cache wait up to
    ``batch_window_ms`` for compatible queries (same table version,
    mechanism, and clipping bounds) to coalesce into one vectorized
    release; ``max_batch`` flushes a group early.  ``0.0`` disables
    batching — every miss executes immediately (the unbatched path,
    byte-identical to any batched one under the same seed).

    Backpressure: at most ``max_queue_depth`` requests may be admitted
    and unresolved at once — beyond that, submissions are shed
    immediately with ``STATUS_REJECTED_OVERLOAD``.  A request older
    than its deadline (``deadline_ms`` on the request, else
    ``default_deadline_ms``) when its batch reaches a worker is shed
    the same way, before it costs any ε.

    Admission: ``rate_limit`` admissions per tenant per
    ``rate_window_s`` and a global ``max_inflight`` cap, both optional.

    Cache: ``cache`` toggles the DP answer cache (replay = free
    post-processing), sized by ``cache_entries`` and shared globally or
    per tenant via ``cache_scope``.

    Tenancy: ``default_epsilon_budget`` enables auto-registration of
    unknown tenants.  ``backend_latency_s`` injects a per-batch
    data-plane delay for benchmarks; leave it 0 in real use.
    """

    workers: int = 4
    seed: int = 0
    batch_window_ms: float = 0.0
    max_batch: int = 64
    max_queue_depth: int = 4096
    default_deadline_ms: float | None = None
    rate_limit: int | None = None
    rate_window_s: float = 1.0
    max_inflight: int | None = None
    cache: bool = True
    cache_entries: int = 4096
    cache_scope: str = SCOPE_GLOBAL
    default_epsilon_budget: float | None = None
    default_delta_budget: float = 0.0
    backend_latency_s: float = 0.0

    def __post_init__(self):
        if self.workers < 1:
            raise DataError("workers must be at least 1")
        if self.batch_window_ms < 0:
            raise DataError("batch_window_ms must be non-negative")
        if self.max_batch < 1:
            raise DataError("max_batch must be at least 1")
        if self.max_queue_depth < 1:
            raise DataError("max_queue_depth must be at least 1")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise DataError("default_deadline_ms must be positive (or None)")
        if self.rate_limit is not None and self.rate_limit < 1:
            raise DataError("rate_limit must be at least 1 (or None)")
        if self.rate_window_s <= 0:
            raise DataError("rate_window_s must be positive")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise DataError("max_inflight must be at least 1 (or None)")
        if self.cache_entries < 1:
            raise DataError("cache_entries must be at least 1")
        if self.cache_scope not in (SCOPE_GLOBAL, SCOPE_TENANT):
            raise DataError(
                f"cache_scope must be '{SCOPE_GLOBAL}' or '{SCOPE_TENANT}', "
                f"got {self.cache_scope!r}"
            )
        if self.default_delta_budget < 0:
            raise DataError("default_delta_budget must be non-negative")
        if self.backend_latency_s < 0:
            raise DataError("backend_latency_s must be non-negative")

    def with_legacy_kwargs(self, **legacy) -> "ServeConfig":
        """This config with deprecated ``QueryServer`` kwargs folded in.

        ``cache`` accepts the historical ``True``/``False``/``None``/
        :class:`AnswerCache` spellings; other values must be listed in
        :data:`LEGACY_KWARG_FIELDS`.  Unknown names raise
        :class:`DataError` (they were never valid kwargs either).
        """
        updates = {}
        for name, value in legacy.items():
            if name == "cache":
                # Historical spellings: True/AnswerCache enable, None/False
                # disable.  (An AnswerCache instance is also installed
                # verbatim by the server; here only the flag matters.)
                updates["cache"] = value is True or isinstance(value, AnswerCache)
                continue
            if name not in LEGACY_KWARG_FIELDS:
                known = sorted([*LEGACY_KWARG_FIELDS, "cache"])
                raise DataError(
                    f"unknown QueryServer kwarg {name!r}; legacy kwargs: {known}"
                )
            updates[LEGACY_KWARG_FIELDS[name]] = value
        return replace(self, **updates) if updates else self

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """The config's field names (the CLI builds kwargs from these)."""
        return tuple(f.name for f in fields(cls))
