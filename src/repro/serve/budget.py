"""Per-tenant budget management with speculative charges.

The serving loop must never burn budget on a query that fails after
admission (execution error, cancelled request) and must never let two
concurrent queries both pass an affordability check that only one of
them can afford.  The :class:`BudgetManager` solves both with a
two-phase protocol:

1. :meth:`reserve` — under the manager's lock, check the tenant's
   accountant against (spent + **pending**) and record a pending
   reservation.  Concurrent reservations therefore see each other.
2. :meth:`commit` — the query succeeded: charge the accountant's ledger
   and drop the pending mark.  :meth:`rollback` — it failed: drop the
   pending mark and the ledger never hears about it.

Rejected or failed queries leave the ledger byte-identical to a world
where they were never submitted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.confidentiality.accountant import (
    LedgerEntry,
    PrivacyAccountant,
)
from repro.exceptions import DataError, PrivacyBudgetError


@dataclass(eq=False)  # identity semantics: equal fields ≠ same reservation
class Reservation:
    """One speculative (ε, δ) charge awaiting commit or rollback."""

    tenant: str
    epsilon: float
    delta: float
    state: str = field(default="pending")  # pending | committed | rolled_back

    @property
    def settled(self) -> bool:
        return self.state != "pending"


class BudgetManager:
    """Thread-safe registry of tenant accountants with two-phase spending."""

    def __init__(self):
        self._lock = threading.RLock()
        self._accountants: dict[str, PrivacyAccountant] = {}
        self._pending: dict[str, list[Reservation]] = {}

    # -- tenant registry ----------------------------------------------------

    def register(self, tenant: str,
                 accountant: PrivacyAccountant) -> PrivacyAccountant:
        """Attach ``accountant`` as ``tenant``'s budget (idempotent per name)."""
        if not tenant:
            raise DataError("tenant name must be non-empty")
        with self._lock:
            if tenant in self._accountants:
                raise DataError(f"tenant {tenant!r} is already registered")
            self._accountants[tenant] = accountant
            self._pending[tenant] = []
        return accountant

    def accountant(self, tenant: str) -> PrivacyAccountant:
        """The accountant backing ``tenant``."""
        with self._lock:
            if tenant not in self._accountants:
                raise DataError(
                    f"unknown tenant {tenant!r}; registered: {self.tenants}"
                )
            return self._accountants[tenant]

    @property
    def tenants(self) -> list[str]:
        """Registered tenant names."""
        with self._lock:
            return list(self._accountants)

    def __contains__(self, tenant: str) -> bool:
        with self._lock:
            return tenant in self._accountants

    # -- two-phase spending -------------------------------------------------

    def pending_epsilon(self, tenant: str) -> float:
        """ε currently reserved but not yet committed for ``tenant``."""
        with self._lock:
            return sum(r.epsilon for r in self._pending.get(tenant, ()))

    def remaining(self, tenant: str) -> float:
        """Committed-plus-pending view of the tenant's unspent ε."""
        with self._lock:
            return self.accountant(tenant).remaining() - self.pending_epsilon(tenant)

    def can_reserve(self, tenant: str, epsilon: float,
                    delta: float = 0.0) -> bool:
        """Would :meth:`reserve` succeed right now?"""
        with self._lock:
            accountant = self.accountant(tenant)
            pending = self._pending[tenant]
            return accountant.can_spend(
                sum(r.epsilon for r in pending) + epsilon,
                sum(r.delta for r in pending) + delta,
            )

    def reserve(self, tenant: str, epsilon: float,
                delta: float = 0.0) -> Reservation:
        """Speculatively charge (ε, δ) or raise :class:`PrivacyBudgetError`."""
        if epsilon <= 0:
            raise DataError(f"epsilon must be positive, got {epsilon}")
        if delta < 0:
            raise DataError(f"delta must be non-negative, got {delta}")
        with self._lock:
            accountant = self.accountant(tenant)
            if not self.can_reserve(tenant, epsilon, delta):
                raise PrivacyBudgetError(
                    f"tenant {tenant!r} cannot afford ε={epsilon:.4g}: "
                    f"ε_remaining={accountant.remaining():.4g} with "
                    f"ε_pending={self.pending_epsilon(tenant):.4g}"
                )
            reservation = Reservation(tenant, float(epsilon), float(delta))
            self._pending[tenant].append(reservation)
            return reservation

    def commit(self, reservation: Reservation,
               label: str = "serve.query") -> LedgerEntry:
        """Turn a reservation into a real ledger entry."""
        with self._lock:
            self._check_pending(reservation)
            # Spend *before* settling: if the ledger somehow refuses
            # (out-of-band spending on the same accountant), the
            # reservation stays pending and can still be rolled back.
            entry = self._accountants[reservation.tenant].spend(
                reservation.epsilon, reservation.delta, label=label
            )
            self._settle(reservation, "committed")
            return entry

    def rollback(self, reservation: Reservation) -> None:
        """Release a reservation; the ledger never sees it."""
        with self._lock:
            self._check_pending(reservation)
            self._settle(reservation, "rolled_back")

    def _check_pending(self, reservation: Reservation) -> None:
        if reservation.settled:
            raise DataError(f"reservation is already {reservation.state}")
        if reservation not in self._pending.get(reservation.tenant, []):
            raise DataError(
                f"reservation for {reservation.tenant!r} is not pending here"
            )

    def _settle(self, reservation: Reservation, state: str) -> None:
        self._pending[reservation.tenant].remove(reservation)
        reservation.state = state
