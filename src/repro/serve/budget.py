"""Per-tenant budget management with speculative charges.

The serving loop must never burn budget on a query that fails after
admission (execution error, cancelled request) and must never let two
concurrent queries both pass an affordability check that only one of
them can afford.  The :class:`BudgetManager` solves both with a
two-phase protocol:

1. :meth:`reserve` — under the tenant's lock, check the tenant's
   accountant against (spent + **pending**) and record a pending
   reservation.  Concurrent reservations therefore see each other.
2. :meth:`commit` — the query succeeded: charge the accountant's ledger
   and drop the pending mark.  :meth:`rollback` — it failed: drop the
   pending mark and the ledger never hears about it.

Rejected or failed queries leave the ledger byte-identical to a world
where they were never submitted.

The ledgers are **sharded per tenant**: every tenant owns its own lock,
accountant, and pending list, so two tenants reserving concurrently
never serialise on each other.  A short registry lock guards only
registration and the tenant listing — the reserve/commit hot path takes
exactly one per-tenant lock and the registry is read lock-free (one
atomic dict lookup).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.confidentiality.accountant import (
    LedgerEntry,
    PrivacyAccountant,
)
from repro.exceptions import DataError, PrivacyBudgetError


@dataclass(eq=False)  # identity semantics: equal fields ≠ same reservation
class Reservation:
    """One speculative (ε, δ) charge awaiting commit or rollback."""

    tenant: str
    epsilon: float
    delta: float
    state: str = field(default="pending")  # pending | committed | rolled_back

    @property
    def settled(self) -> bool:
        return self.state != "pending"


class _TenantShard:
    """One tenant's ledger shard: a lock, an accountant, a pending list."""

    __slots__ = ("lock", "accountant", "pending")

    def __init__(self, accountant: PrivacyAccountant):
        self.lock = threading.Lock()
        self.accountant = accountant
        self.pending: list[Reservation] = []


class BudgetManager:
    """Registry of tenant accountants with sharded two-phase spending."""

    def __init__(self):
        self._registry_lock = threading.Lock()
        self._shards: dict[str, _TenantShard] = {}

    # -- tenant registry ----------------------------------------------------

    def register(self, tenant: str,
                 accountant: PrivacyAccountant) -> PrivacyAccountant:
        """Attach ``accountant`` as ``tenant``'s budget (idempotent per name)."""
        if not tenant:
            raise DataError("tenant name must be non-empty")
        with self._registry_lock:
            if tenant in self._shards:
                raise DataError(f"tenant {tenant!r} is already registered")
            self._shards[tenant] = _TenantShard(accountant)
        return accountant

    def _shard(self, tenant: str) -> _TenantShard:
        # Lock-free read: dict lookup is atomic, and shards are never
        # removed — the hot path never touches the registry lock.
        shard = self._shards.get(tenant)
        if shard is None:
            raise DataError(
                f"unknown tenant {tenant!r}; registered: {self.tenants}"
            )
        return shard

    def accountant(self, tenant: str) -> PrivacyAccountant:
        """The accountant backing ``tenant``."""
        return self._shard(tenant).accountant

    @property
    def tenants(self) -> list[str]:
        """Registered tenant names."""
        with self._registry_lock:
            return list(self._shards)

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._shards

    # -- two-phase spending -------------------------------------------------

    def pending_epsilon(self, tenant: str) -> float:
        """ε currently reserved but not yet committed for ``tenant``."""
        shard = self._shards.get(tenant)
        if shard is None:
            return 0.0
        with shard.lock:
            return sum(r.epsilon for r in shard.pending)

    def remaining(self, tenant: str) -> float:
        """Committed-plus-pending view of the tenant's unspent ε."""
        shard = self._shard(tenant)
        with shard.lock:
            return (shard.accountant.remaining()
                    - sum(r.epsilon for r in shard.pending))

    @staticmethod
    def _can_reserve_locked(shard: _TenantShard, epsilon: float,
                            delta: float) -> bool:
        return shard.accountant.can_spend(
            sum(r.epsilon for r in shard.pending) + epsilon,
            sum(r.delta for r in shard.pending) + delta,
        )

    def can_reserve(self, tenant: str, epsilon: float,
                    delta: float = 0.0) -> bool:
        """Would :meth:`reserve` succeed right now?"""
        shard = self._shard(tenant)
        with shard.lock:
            return self._can_reserve_locked(shard, epsilon, delta)

    def reserve(self, tenant: str, epsilon: float,
                delta: float = 0.0) -> Reservation:
        """Speculatively charge (ε, δ) or raise :class:`PrivacyBudgetError`."""
        if epsilon <= 0:
            raise DataError(f"epsilon must be positive, got {epsilon}")
        if delta < 0:
            raise DataError(f"delta must be non-negative, got {delta}")
        shard = self._shard(tenant)
        with shard.lock:
            if not self._can_reserve_locked(shard, epsilon, delta):
                raise PrivacyBudgetError(
                    f"tenant {tenant!r} cannot afford ε={epsilon:.4g}: "
                    f"ε_remaining={shard.accountant.remaining():.4g} with "
                    f"ε_pending={sum(r.epsilon for r in shard.pending):.4g}"
                )
            reservation = Reservation(tenant, float(epsilon), float(delta))
            shard.pending.append(reservation)
            return reservation

    def commit(self, reservation: Reservation,
               label: str = "serve.query") -> LedgerEntry:
        """Turn a reservation into a real ledger entry."""
        shard = self._shard(reservation.tenant)
        with shard.lock:
            self._check_pending(shard, reservation)
            # Spend *before* settling: if the ledger somehow refuses
            # (out-of-band spending on the same accountant), the
            # reservation stays pending and can still be rolled back.
            entry = shard.accountant.spend(
                reservation.epsilon, reservation.delta, label=label
            )
            self._settle(shard, reservation, "committed")
            return entry

    def rollback(self, reservation: Reservation) -> None:
        """Release a reservation; the ledger never sees it."""
        shard = self._shard(reservation.tenant)
        with shard.lock:
            self._check_pending(shard, reservation)
            self._settle(shard, reservation, "rolled_back")

    @staticmethod
    def _check_pending(shard: _TenantShard,
                       reservation: Reservation) -> None:
        if reservation.settled:
            raise DataError(f"reservation is already {reservation.state}")
        if reservation not in shard.pending:
            raise DataError(
                f"reservation for {reservation.tenant!r} is not pending here"
            )

    @staticmethod
    def _settle(shard: _TenantShard, reservation: Reservation,
                state: str) -> None:
        shard.pending.remove(reservation)
        reservation.state = state
