"""Query planning: validate, normalize, canonicalize.

The planner owns the table registry and turns a raw
:class:`~repro.serve.protocol.QueryRequest` into an executable
:class:`QueryPlan` — or raises :class:`~repro.exceptions.DataError` with
a message the server converts into a structured rejection.

Canonicalization matters because the answer cache is keyed on the plan's
**fingerprint**: two requests that mean the same release (same table
*version*, kind, column, parameters, ε) must hash identically, so bins
are sorted and deduplicated, floats are normalized through ``repr``, and
the registered table's version is folded in (re-registering a table
invalidates every cached answer computed from the old rows — replaying
those would be answering about data that no longer exists).

A served query *is* a one-node dataflow plan: the planner represents it
as a :class:`repro.engine.Node` whose ``key_parts`` are the canonical
query identity, and the plan's fingerprint is exactly that node's cache
key.  The hashing bottoms out in
:func:`repro.store.fingerprint.fingerprint` — the planner's historical
private ``_fingerprint``, promoted to the system-wide canonicalisation
shared with the artifact store.  The digests are unchanged through both
refactors, so answers cached before them replay after them
(regression-tested in ``tests/test_store.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.data.schema import ColumnType
from repro.data.table import Table
from repro.engine import Node, Plan
from repro.exceptions import DataError
from repro.serve.protocol import KINDS, QueryRequest
from repro.store.fingerprint import fingerprint

#: Kinds that aggregate a numeric column under declared bounds.
_BOUNDED_KINDS = ("sum", "mean", "quantile")


@dataclass(frozen=True)
class QueryPlan:
    """A validated, normalized, executable query."""

    kind: str
    table: str
    table_version: int
    epsilon: float
    delta: float
    column: str | None
    lower: float | None
    upper: float | None
    q: float | None
    bins: tuple
    fingerprint: str

    def key_parts(self) -> dict:
        """The canonical identity of this release, as engine key parts."""
        return {
            "table": self.table, "version": self.table_version,
            "kind": self.kind, "column": self.column,
            "epsilon": self.epsilon, "delta": self.delta,
            "lower": self.lower, "upper": self.upper, "q": self.q,
            "bins": self.bins,
        }

    @property
    def group_key(self) -> tuple:
        """The batching compatibility key: queries that may coalesce.

        Two plans with equal group keys read the same table version
        through the same mechanism with the same clipping bounds — the
        data-plane work (scan, clip, bin counts, candidate utilities)
        is identical, so one vectorized pass can serve every member and
        only the per-member noise draw differs.  ε, δ, and tenant are
        deliberately *not* part of the key: they change the noise scale
        and the ledger charged, never the shared statistics.
        """
        return (self.table, self.table_version, self.kind, self.column,
                self.lower, self.upper, self.q, self.bins)

    def as_node(self, execute: Callable | None = None) -> Node:
        """This query as an engine node.

        Without ``execute`` the node is representation-only — it can be
        fingerprinted and wired but not run (what the planner needs).
        With ``execute`` (a ``plan -> value`` callable, e.g. the
        server's noisy-execution dispatch) the node computes the
        release.  Uncacheable by design: each execution must draw fresh
        noise — *answer* replay is the :class:`AnswerCache`'s job,
        governed by budget semantics, not the artifact store's.
        """
        fn = None
        if execute is not None:
            fn = lambda inputs, rng: execute(self)  # noqa: E731
        return Node(
            f"query:{self.kind}", fn,
            key_parts=self.key_parts(),
            cacheable=False,
            label=f"query:{self.kind}",
        )

    def as_engine_plan(self, execute: Callable) -> Plan:
        """The query as a runnable one-node :class:`repro.engine.Plan`."""
        return Plan([self.as_node(execute)])


class QueryPlanner:
    """Registry of servable tables plus request validation/normalization.

    The registry itself is a :class:`repro.relational.SchemaRegistry`;
    passing ``store=`` makes re-registration invalidate the old rows'
    ``table:<fingerprint>`` artifacts alongside the version bump that
    already invalidates cached *answers*.
    """

    #: Bound on the memoized-plan LRU (distinct request shapes).
    PLAN_CACHE_ENTRIES = 4096

    def __init__(self, store=None):
        from repro.relational.registry import SchemaRegistry

        self._registry = SchemaRegistry(store=store)
        # Planning is pure given the registry state, so identical
        # request shapes reuse the validated plan (and its sha256
        # fingerprint) instead of re-hashing on every submission — the
        # serving hot path plans in one dict probe.  ``_generation``
        # bumps on any (re-)registration, invalidating every entry.
        self._plan_lock = threading.Lock()
        self._plan_cache: OrderedDict[tuple, QueryPlan] = OrderedDict()
        self._generation = 0

    # -- table registry -----------------------------------------------------

    @property
    def _tables(self) -> dict[str, Table]:
        return self._registry.tables

    @property
    def _versions(self) -> dict[str, int]:
        return self._registry.versions

    def register_table(self, name: str, table: Table) -> None:
        """Make ``table`` servable as ``name`` (re-registering bumps its version)."""
        self._registry.register_table(name, table)
        self._invalidate_plans()

    def register_dataset(self, dataset) -> list[str]:
        """Make every member table of a relational dataset servable."""
        names = self._registry.register_dataset(dataset)
        self._invalidate_plans()
        return names

    def _invalidate_plans(self) -> None:
        with self._plan_lock:
            self._generation += 1
            self._plan_cache.clear()

    @property
    def registry(self):
        """The underlying :class:`~repro.relational.SchemaRegistry`."""
        return self._registry

    @property
    def table_names(self) -> list[str]:
        """Registered table names, in registration order."""
        return self._registry.table_names

    def table(self, name: str) -> Table:
        """The registered table called ``name``."""
        return self._registry.table(name)

    def table_version(self, name: str) -> int:
        """How many times ``name`` has been (re-)registered."""
        return self._registry.version(name)

    # -- planning -----------------------------------------------------------

    def plan(self, request: QueryRequest) -> QueryPlan:
        """Validate and canonicalize one request into a :class:`QueryPlan`.

        Identical request shapes (tenant aside — plans are
        tenant-independent) replay the memoized plan; any table
        (re-)registration invalidates the memo wholesale.
        """
        if not str(request.tenant).strip():
            raise DataError("tenant must be non-empty")
        try:
            key = (request.kind, request.table, request.column,
                   request.lower, request.upper, request.q,
                   tuple(request.bins), request.epsilon, request.delta)
        except TypeError:  # unhashable field values: plan uncached
            key = None
        if key is not None:
            with self._plan_lock:
                generation = self._generation
                cached = self._plan_cache.get((generation, key))
                if cached is not None:
                    self._plan_cache.move_to_end((generation, key))
                    return cached
        plan = self._plan_uncached(request)
        if key is not None:
            with self._plan_lock:
                if generation == self._generation:
                    if len(self._plan_cache) >= self.PLAN_CACHE_ENTRIES:
                        self._plan_cache.popitem(last=False)
                    self._plan_cache[(generation, key)] = plan
        return plan

    def _plan_uncached(self, request: QueryRequest) -> QueryPlan:
        kind = str(request.kind).strip().lower()
        if kind not in KINDS:
            raise DataError(f"unknown query kind {request.kind!r}; one of {KINDS}")
        if not str(request.tenant).strip():
            raise DataError("tenant must be non-empty")
        epsilon = float(request.epsilon)
        if not epsilon > 0:
            raise DataError(f"epsilon must be positive, got {request.epsilon}")
        delta = float(request.delta or 0.0)
        if delta < 0:
            raise DataError(f"delta must be non-negative, got {request.delta}")

        table_name = self._resolve_table_name(request.table)
        table = self.table(table_name)

        column = request.column.strip() if request.column else None
        spec = None
        if kind != "count":
            if column is None:
                raise DataError(f"{kind} queries need a column")
            if column not in table.schema.names:
                raise DataError(
                    f"table {table_name!r} has no column {column!r}"
                )
            spec = table.schema[column]

        lower = upper = q = None
        bins: tuple = ()
        if kind in _BOUNDED_KINDS:
            if spec.ctype is not ColumnType.NUMERIC:
                raise DataError(f"{kind} needs a numeric column, {column!r} is not")
            if request.lower is None or request.upper is None:
                raise DataError(
                    f"{kind} queries need declared lower/upper value bounds"
                )
            lower, upper = float(request.lower), float(request.upper)
            if not lower < upper:
                raise DataError(f"need lower < upper, got [{lower}, {upper}]")
        if kind == "quantile":
            if request.q is None:
                raise DataError("quantile queries need q in [0, 1]")
            q = float(request.q)
            if not 0.0 <= q <= 1.0:
                raise DataError(f"q must be in [0, 1], got {request.q}")
        if kind == "histogram":
            if not request.bins:
                raise DataError("histogram queries need explicit bins")
            coerce = float if spec.ctype is ColumnType.NUMERIC else str
            try:
                bins = tuple(sorted({coerce(value) for value in request.bins}))
            except (TypeError, ValueError) as error:
                raise DataError(f"bad histogram bins: {error}") from None

        version = self._versions[table_name]
        # The digest is the query node's engine cache key: the planner
        # owns validation/normalisation, the engine owns identity.
        identity = Node(f"query:{kind}", None, key_parts={
            "table": table_name, "version": version, "kind": kind,
            "column": column, "epsilon": epsilon, "delta": delta,
            "lower": lower, "upper": upper, "q": q, "bins": bins,
        })
        return QueryPlan(
            kind=kind, table=table_name, table_version=version,
            epsilon=epsilon, delta=delta, column=column,
            lower=lower, upper=upper, q=q, bins=bins,
            fingerprint=identity.key(),
        )

    def _resolve_table_name(self, name: str | None) -> str:
        if name:
            return str(name)
        if len(self._tables) == 1:
            return next(iter(self._tables))
        if not self._tables:
            raise DataError("no tables registered with the planner")
        raise DataError(
            f"request names no table and several are registered: {self.table_names}"
        )


#: Backwards-compatible alias: the canonicalisation moved to
#: :mod:`repro.store.fingerprint` (same digests for every planner input).
_fingerprint = fingerprint
