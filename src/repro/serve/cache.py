"""The DP answer cache: free post-processing as a systems optimisation.

Differential privacy is closed under post-processing: once a noisy
answer has been released, repeating it verbatim reveals nothing new and
costs **zero** additional ε.  For a serving workload — where popular
queries repeat heavily — replaying released answers is simultaneously
the biggest privacy-budget optimisation and the biggest latency
optimisation available, and it is *exact*, not approximate.

The cache is keyed on the planner's canonical query fingerprint, which
folds in the table version, the query parameters, **and ε** — a repeat
of the same aggregate at a different ε is a different release and must
be recomputed (its noise scale differs).  Answers are shared across
tenants by default: a released answer is public information, so tenant B
replaying tenant A's release leaks nothing and pays nothing.  Pass
``scope="tenant"`` for deployments whose answers must stay siloed.

Bounded LRU: ``max_entries`` caps memory; eviction only ever costs
budget (a future re-ask recomputes), never correctness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.exceptions import DataError

#: Cache sharing scopes.
SCOPE_GLOBAL = "global"
SCOPE_TENANT = "tenant"


@dataclass(frozen=True)
class CachedAnswer:
    """One released noisy answer, replayable at zero ε-cost."""

    fingerprint: str
    value: float | dict
    epsilon: float  # what the original release cost (informational)

    def replay(self) -> float | dict:
        """The released value (dicts are copied; the cache stays immutable)."""
        return dict(self.value) if isinstance(self.value, dict) else self.value


class AnswerCache:
    """Thread-safe bounded LRU of released DP answers."""

    def __init__(self, max_entries: int = 4096, scope: str = SCOPE_GLOBAL):
        if max_entries < 1:
            raise DataError("max_entries must be at least 1")
        if scope not in (SCOPE_GLOBAL, SCOPE_TENANT):
            raise DataError(f"scope must be 'global' or 'tenant', got {scope!r}")
        self.max_entries = int(max_entries)
        self.scope = scope
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, CachedAnswer] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _key(self, fingerprint: str, tenant: str) -> tuple:
        if self.scope == SCOPE_TENANT:
            return (tenant, fingerprint)
        return (fingerprint,)

    def get(self, fingerprint: str, tenant: str = "") -> CachedAnswer | None:
        """The cached release for ``fingerprint``, or ``None`` (counts stats)."""
        key = self._key(fingerprint, tenant)
        with self._lock:
            answer = self._entries.get(key)
            if answer is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return answer

    def put(self, fingerprint: str, value: float | dict, epsilon: float,
            tenant: str = "") -> CachedAnswer:
        """Record a fresh release (idempotent per key; LRU-evicts at capacity)."""
        frozen = dict(value) if isinstance(value, dict) else float(value)
        answer = CachedAnswer(fingerprint, frozen, float(epsilon))
        key = self._key(fingerprint, tenant)
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = answer
            self._entries.move_to_end(key)
        return answer

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if self.scope == SCOPE_TENANT:
                return any(key[-1] == fingerprint for key in self._entries)
            return (fingerprint,) in self._entries

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Counters for telemetry and the CLI summary."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }
