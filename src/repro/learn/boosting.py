"""Gradient-boosted trees: the strongest tabular model in the toolkit.

Binary log-loss boosting over shallow CART regression-on-residual trees.
Joins the E9 frontier as a second high-accuracy, low-readability model —
and gives the mitigation/conformal machinery a stronger base learner to
be agnostic over.
"""

from __future__ import annotations

import numpy as np

from repro.data.synth.base import sigmoid
from repro.exceptions import DataError
from repro.learn.base import (
    Classifier,
    check_binary_labels,
    check_matrix,
    check_weights,
)
from repro.learn.tree import DecisionTreeClassifier, ensemble_leaf_values


class _RegressionTree(DecisionTreeClassifier):
    """CART tree fitted to real-valued gradients via a weight trick.

    Reuses the classification tree's splitter by encoding the residual
    sign as the label and its magnitude as the weight; leaf values are
    then re-estimated as Newton steps on the assigned rows.
    """

    def fit_gradients(self, X: np.ndarray, gradients: np.ndarray,
                      hessians: np.ndarray) -> "_RegressionTree":
        signs = (gradients > 0).astype(np.float64)
        magnitudes = np.abs(gradients) + 1e-12
        super().fit(X, signs, sample_weight=magnitudes)
        # Replace leaf probabilities with Newton leaf values
        # value = sum(gradients) / sum(hessians) per leaf.
        assignments = self._leaf_indices(X)
        leaf_values: dict[int, float] = {}
        for leaf_index in np.unique(assignments):
            mask = assignments == leaf_index
            denominator = hessians[mask].sum()
            leaf_values[int(leaf_index)] = float(
                gradients[mask].sum() / max(denominator, 1e-12)
            )
        for index, node in enumerate(self._nodes):
            if node.feature == -1:
                node.probability = leaf_values.get(index, 0.0)
        self._refresh_arrays()  # leaf payloads changed under the SoA mirror
        return self

    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """The (Newton) leaf value each row lands in."""
        return self.predict_proba(X)  # probabilities were overwritten


class GradientBoostingClassifier(Classifier):
    """Log-loss gradient boosting with shallow trees.

    Parameters
    ----------
    n_stages:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth, min_samples_leaf:
        Passed to the stage trees (keep them shallow).
    subsample:
        Row fraction per stage (stochastic gradient boosting).
    seed:
        Seeds the subsampling.
    """

    def __init__(self, n_stages: int = 100, learning_rate: float = 0.1,
                 max_depth: int = 3, min_samples_leaf: int = 10,
                 subsample: float = 1.0, seed: int = 0):
        if n_stages < 1:
            raise DataError("n_stages must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise DataError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise DataError("subsample must be in (0, 1]")
        self.n_stages = n_stages
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self._trees: list[_RegressionTree] = []
        self._base_score: float = 0.0

    def fit(self, X, y, sample_weight=None) -> "GradientBoostingClassifier":
        """Stagewise fitting of negative-gradient trees."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if len(X) != len(y):
            raise DataError(f"X has {len(X)} rows but y has {len(y)}")
        weights = check_weights(sample_weight, len(y))
        weights = weights / weights.mean()
        rng = np.random.default_rng(self.seed)

        positive_rate = float(np.clip(
            np.average(y, weights=weights), 1e-6, 1.0 - 1e-6
        ))
        self._base_score = float(np.log(positive_rate / (1.0 - positive_rate)))
        raw = np.full(len(y), self._base_score)
        self._trees = []
        n_sample = max(2, int(round(self.subsample * len(y))))
        for _ in range(self.n_stages):
            probabilities = np.asarray(sigmoid(raw))
            gradients = weights * (y - probabilities)
            hessians = weights * probabilities * (1.0 - probabilities)
            if self.subsample < 1.0:
                rows = rng.choice(len(y), size=n_sample, replace=False)
            else:
                rows = np.arange(len(y))
            tree = _RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit_gradients(X[rows], gradients[rows], hessians[rows])
            raw += self.learning_rate * tree.leaf_values(X)
            self._trees.append(tree)
        self._mark_fitted()
        return self

    def decision_scores(self, X) -> np.ndarray:
        """Raw boosted logits."""
        self._require_fitted()
        X = check_matrix(X)
        per_tree = ensemble_leaf_values(self._trees, X)  # (n, n_stages)
        raw = np.full(len(X), self._base_score)
        # Stagewise accumulation order preserved for exact float identity.
        for stage in range(per_tree.shape[1]):
            raw += self.learning_rate * per_tree[:, stage]
        return raw

    def predict_proba(self, X) -> np.ndarray:
        """Sigmoid of the boosted logits."""
        return np.asarray(sigmoid(self.decision_scores(X)))

    @property
    def n_trees(self) -> int:
        """Fitted stage count."""
        self._require_fitted()
        return len(self._trees)
