"""Classification and regression metrics.

These are the raw ingredients; the accuracy pillar wraps them with
uncertainty (bootstrap CIs, conformal sets) because §2-Q2 demands
"meta-information on the accuracy of the output", not point scores alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError


def _check_pair(y_true, y_other) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_other = np.asarray(y_other, dtype=np.float64)
    if y_true.shape != y_other.shape or y_true.ndim != 1:
        raise DataError(
            f"inputs must be equal-length 1-D arrays, got {y_true.shape} and {y_other.shape}"
        )
    if len(y_true) == 0:
        raise DataError("metric inputs are empty")
    return y_true, y_other


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts and the rates derived from them."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def n(self) -> int:
        """Total examples."""
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        """Fraction of correct decisions."""
        return (self.tp + self.tn) / self.n if self.n else 0.0

    @property
    def precision(self) -> float:
        """TP / predicted positives (0 when nothing was predicted positive)."""
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """True positive rate."""
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def false_positive_rate(self) -> float:
        """FP / actual negatives."""
        denominator = self.fp + self.tn
        return self.fp / denominator if denominator else 0.0

    @property
    def false_negative_rate(self) -> float:
        """FN / actual positives."""
        denominator = self.tp + self.fn
        return self.fn / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) else 0.0

    @property
    def selection_rate(self) -> float:
        """Fraction predicted positive (the fairness base quantity)."""
        return (self.tp + self.fp) / self.n if self.n else 0.0


def confusion_matrix(y_true, y_pred) -> ConfusionMatrix:
    """Count TP/FP/TN/FN for 0/1 arrays."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    tp = int(np.sum((y_true == 1.0) & (y_pred == 1.0)))
    fp = int(np.sum((y_true == 0.0) & (y_pred == 1.0)))
    tn = int(np.sum((y_true == 0.0) & (y_pred == 0.0)))
    fn = int(np.sum((y_true == 1.0) & (y_pred == 0.0)))
    return ConfusionMatrix(tp=tp, fp=fp, tn=tn, fn=fn)


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact matches."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def precision(y_true, y_pred) -> float:
    """Positive predictive value."""
    return confusion_matrix(y_true, y_pred).precision


def recall(y_true, y_pred) -> float:
    """True positive rate."""
    return confusion_matrix(y_true, y_pred).recall


def f1_score(y_true, y_pred) -> float:
    """Harmonic mean of precision and recall."""
    return confusion_matrix(y_true, y_pred).f1


def roc_auc(y_true, scores) -> float:
    """Area under the ROC curve via the rank (Mann-Whitney) formulation.

    Ties in the scores receive the usual midrank treatment.
    """
    y_true, scores = _check_pair(y_true, scores)
    n_pos = int(np.sum(y_true == 1.0))
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise DataError("ROC AUC requires both classes present")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    index = 0
    while index < len(scores):
        tie_end = index
        while (tie_end + 1 < len(scores)
               and sorted_scores[tie_end + 1] == sorted_scores[index]):
            tie_end += 1
        midrank = 0.5 * (index + tie_end) + 1.0
        ranks[order[index:tie_end + 1]] = midrank
        index = tie_end + 1
    positive_rank_sum = ranks[y_true == 1.0].sum()
    return float(
        (positive_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
    )


def roc_curve(y_true, scores) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fpr, tpr, thresholds) sweeping the decision threshold downward."""
    y_true, scores = _check_pair(y_true, scores)
    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    sorted_scores = scores[order]
    n_pos = sorted_true.sum()
    n_neg = len(sorted_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise DataError("ROC curve requires both classes present")
    tps = np.cumsum(sorted_true)
    fps = np.cumsum(1.0 - sorted_true)
    distinct = np.append(np.flatnonzero(np.diff(sorted_scores)), len(scores) - 1)
    tpr = np.concatenate([[0.0], tps[distinct] / n_pos])
    fpr = np.concatenate([[0.0], fps[distinct] / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[distinct]])
    return fpr, tpr, thresholds


def log_loss(y_true, probabilities) -> float:
    """Mean negative log-likelihood of the true labels."""
    y_true, probabilities = _check_pair(y_true, probabilities)
    eps = 1e-12
    clipped = np.clip(probabilities, eps, 1.0 - eps)
    return float(-np.mean(
        y_true * np.log(clipped) + (1.0 - y_true) * np.log(1.0 - clipped)
    ))


def brier_score(y_true, probabilities) -> float:
    """Mean squared error of the probabilities."""
    y_true, probabilities = _check_pair(y_true, probabilities)
    return float(np.mean((probabilities - y_true) ** 2))


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared regression error."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute regression error."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))
