"""CART decision trees.

The tree serves three FACT roles: a capable classifier, the base learner
of the random forest, and — crucially for the transparency pillar — the
*interpretable surrogate* that the black-box explainers distil into.
Leaves store weighted positive-class fractions so trees are probabilistic
like every other classifier here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import (
    Classifier,
    check_binary_labels,
    check_matrix,
    check_weights,
)


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    probability: float = 0.5
    weight: float = 0.0
    depth: int = 0


def _weighted_gini(pos_weight: float, total_weight: float) -> float:
    if total_weight <= 0:
        return 0.0
    p = pos_weight / total_weight
    return 2.0 * p * (1.0 - p)


class DecisionTreeClassifier(Classifier):
    """Binary CART tree with weighted Gini splitting.

    Parameters
    ----------
    max_depth:
        Depth budget; small values keep the tree human-readable (the
        transparency experiments sweep this).
    min_samples_leaf:
        Minimum *weighted* fraction-equivalent sample count per leaf.
    min_impurity_decrease:
        Minimum Gini improvement to accept a split.
    max_features:
        Number of features considered per split (``None`` = all); the
        forest sets this for decorrelation.
    rng:
        Generator used only when ``max_features`` subsamples features.
    """

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 5,
                 min_impurity_decrease: float = 0.0,
                 max_features: int | None = None,
                 rng: np.random.Generator | None = None):
        if max_depth < 1:
            raise DataError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise DataError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.rng = rng
        self._nodes: list[_Node] = []
        self._n_features = 0

    # -- fitting ------------------------------------------------------------

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        """Grow the tree depth-first."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if len(X) != len(y):
            raise DataError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise DataError("cannot fit a tree on zero rows")
        weights = check_weights(sample_weight, len(y))
        self._n_features = X.shape[1]
        self._nodes = []
        self._grow(X, y, weights, np.arange(len(y)), depth=0)
        self._mark_fitted()
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, weights: np.ndarray,
              indices: np.ndarray, depth: int) -> int:
        node_index = len(self._nodes)
        w = weights[indices]
        total = w.sum()
        pos = float(w[y[indices] == 1.0].sum())
        probability = pos / total if total > 0 else 0.5
        node = _Node(probability=probability, weight=float(total), depth=depth)
        self._nodes.append(node)

        if (depth >= self.max_depth or len(indices) < 2 * self.min_samples_leaf
                or probability in (0.0, 1.0)):
            return node_index
        split = self._best_split(X, y, weights, indices)
        if split is None:
            return node_index
        feature, threshold = split
        mask = X[indices, feature] <= threshold
        left_idx, right_idx = indices[mask], indices[~mask]
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X, y, weights, left_idx, depth + 1)
        node.right = self._grow(X, y, weights, right_idx, depth + 1)
        return node_index

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        rng = self.rng if self.rng is not None else np.random.default_rng(0)
        return rng.choice(n_features, size=self.max_features, replace=False)

    def _best_split(self, X: np.ndarray, y: np.ndarray, weights: np.ndarray,
                    indices: np.ndarray) -> tuple[int, float] | None:
        w = weights[indices]
        labels = y[indices]
        total = w.sum()
        total_pos = float(w[labels == 1.0].sum())
        parent_impurity = _weighted_gini(total_pos, total)
        best: tuple[float, int, float] | None = None

        for feature in self._candidate_features(X.shape[1]):
            values = X[indices, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_w = w[order]
            sorted_pos = sorted_w * (labels[order] == 1.0)
            cum_w = np.cumsum(sorted_w)
            cum_pos = np.cumsum(sorted_pos)
            # Split between distinct consecutive values only.
            boundaries = np.flatnonzero(np.diff(sorted_values) > 0)
            for boundary in boundaries:
                n_left = boundary + 1
                n_right = len(indices) - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                left_w = cum_w[boundary]
                right_w = total - left_w
                left_pos = cum_pos[boundary]
                right_pos = total_pos - left_pos
                impurity = (
                    left_w / total * _weighted_gini(left_pos, left_w)
                    + right_w / total * _weighted_gini(right_pos, right_w)
                )
                gain = parent_impurity - impurity
                if gain <= self.min_impurity_decrease + 1e-12:
                    continue
                if best is None or gain > best[0]:
                    midpoint = 0.5 * (
                        sorted_values[boundary] + sorted_values[boundary + 1]
                    )
                    best = (gain, int(feature), float(midpoint))
        if best is None:
            return None
        return best[1], best[2]

    # -- prediction -----------------------------------------------------------

    def predict_proba(self, X) -> np.ndarray:
        """Leaf positive-class fractions, computed by batched descent."""
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self._n_features:
            raise DataError(
                f"expected {self._n_features} features, got {X.shape[1]}"
            )
        out = np.empty(len(X), dtype=np.float64)
        stack: list[tuple[int, np.ndarray]] = [(0, np.arange(len(X)))]
        while stack:
            node_index, rows = stack.pop()
            if len(rows) == 0:
                continue
            node = self._nodes[node_index]
            if node.feature == -1:
                out[rows] = node.probability
                continue
            mask = X[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[mask]))
            stack.append((node.right, rows[~mask]))
        return out

    # -- introspection (transparency pillar) --------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        self._require_fitted()
        return len(self._nodes)

    @property
    def n_leaves(self) -> int:
        """Leaf count — the usual proxy for rule-set size."""
        self._require_fitted()
        return sum(1 for node in self._nodes if node.feature == -1)

    def depth(self) -> int:
        """Realised depth of the fitted tree."""
        self._require_fitted()
        return max(node.depth for node in self._nodes)

    def feature_importances(self) -> np.ndarray:
        """Weighted impurity decrease attributed to each feature."""
        self._require_fitted()
        importances = np.zeros(self._n_features)
        for node in self._nodes:
            if node.feature == -1:
                continue
            left, right = self._nodes[node.left], self._nodes[node.right]
            parent_imp = _weighted_gini(node.probability * node.weight, node.weight)
            child_imp = (
                _weighted_gini(left.probability * left.weight, left.weight)
                + _weighted_gini(right.probability * right.weight, right.weight)
            )
            importances[node.feature] += max(0.0, parent_imp - child_imp)
        total = importances.sum()
        return importances / total if total > 0 else importances

    def to_rules(self, feature_names: list[str] | None = None) -> list[str]:
        """Render the tree as human-readable decision rules."""
        self._require_fitted()

        def name(feature: int) -> str:
            if feature_names is not None:
                return feature_names[feature]
            return f"x[{feature}]"

        rules: list[str] = []

        def walk(node_index: int, conditions: list[str]) -> None:
            node = self._nodes[node_index]
            if node.feature == -1:
                clause = " and ".join(conditions) if conditions else "always"
                rules.append(f"if {clause}: P(positive) = {node.probability:.3f}")
                return
            walk(node.left,
                 conditions + [f"{name(node.feature)} <= {node.threshold:.4g}"])
            walk(node.right,
                 conditions + [f"{name(node.feature)} > {node.threshold:.4g}"])

        walk(0, [])
        return rules
