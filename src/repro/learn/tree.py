"""CART decision trees.

The tree serves three FACT roles: a capable classifier, the base learner
of the random forest, and — crucially for the transparency pillar — the
*interpretable surrogate* that the black-box explainers distil into.
Leaves store weighted positive-class fractions so trees are probabilistic
like every other classifier here.

Hot-path design (see docs/api.md, "Hot kernels & fusion"): each feature
column is **argsorted once per fit** and the per-node sorted orders are
maintained by partitioning the parent's presorted index matrix — no
re-sorting at any node.  Candidate splits are scored with one vectorized
masked-gain computation over *all* boundaries of *all* candidate
features at once, replacing the historical Python-level boundary loop.
Fitted trees additionally keep a structure-of-arrays mirror of their
nodes so batched prediction descends with pure numpy gathers.  Both
rewrites are pinned byte-identical to the loop implementation by the
golden tests in ``tests/test_learn_golden.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import (
    Classifier,
    check_binary_labels,
    check_matrix,
    check_weights,
)


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    probability: float = 0.5
    weight: float = 0.0
    depth: int = 0


def _weighted_gini(pos_weight: float, total_weight: float) -> float:
    if total_weight <= 0:
        return 0.0
    p = pos_weight / total_weight
    return 2.0 * p * (1.0 - p)


@dataclass
class _TreeArrays:
    """Structure-of-arrays mirror of the node list, for batched descent."""

    feature: np.ndarray      # intp, -1 for leaves
    threshold: np.ndarray    # float64
    left: np.ndarray         # intp
    right: np.ndarray        # intp
    value: np.ndarray        # float64 leaf payload (probability / Newton value)


def _descend(arrays: _TreeArrays, X: np.ndarray) -> np.ndarray:
    """Node index each row of ``X`` lands in (vectorized leaf routing).

    Rows advance one level per iteration, all via numpy gathers; the
    loop runs at most ``depth + 1`` times regardless of row count.
    """
    current = np.zeros(len(X), dtype=np.intp)
    feature = arrays.feature
    active = np.flatnonzero(feature[current] >= 0)
    rows = np.arange(len(X), dtype=np.intp)
    while len(active):
        nodes = current[active]
        split_feature = feature[nodes]
        go_left = (X[rows[active], split_feature]
                   <= arrays.threshold[nodes])
        current[active] = np.where(
            go_left, arrays.left[nodes], arrays.right[nodes]
        )
        active = active[feature[current[active]] >= 0]
    return current


def ensemble_leaf_values(trees, X: np.ndarray) -> np.ndarray:
    """Leaf payloads of every tree for every row, shape ``(n, n_trees)``.

    All trees descend simultaneously on one stacked node table: the
    Python cost is ``O(max_depth)`` iterations of whole-matrix gathers
    instead of ``O(n_trees)`` separate traversals.  Column ``t`` holds
    exactly ``trees[t].predict_proba(X)`` (same leaves, same floats).
    """
    stacks = [tree._arrays() for tree in trees]
    sizes = [len(stack.feature) for stack in stacks]
    offsets = np.cumsum([0, *sizes[:-1]])
    feature = np.concatenate([stack.feature for stack in stacks])
    threshold = np.concatenate([stack.threshold for stack in stacks])
    left = np.concatenate([stack.left for stack in stacks])
    right = np.concatenate([stack.right for stack in stacks])
    value = np.concatenate([stack.value for stack in stacks])
    # Child pointers are tree-local; rebase them onto the stacked table.
    for start, size in zip(offsets, sizes):
        inner = slice(start, start + size)
        internal = feature[inner] >= 0
        left[inner][internal] += start
        right[inner][internal] += start
    rebased_left = left
    rebased_right = right

    n = len(X)
    rows = np.arange(n, dtype=np.intp)[:, None]
    current = np.broadcast_to(offsets, (n, len(stacks))).astype(np.intp)
    while True:
        split_feature = feature[current]
        active = split_feature >= 0
        if not active.any():
            break
        x = X[rows, np.where(active, split_feature, 0)]
        go_left = x <= threshold[current]
        advanced = np.where(go_left, rebased_left[current],
                            rebased_right[current])
        current = np.where(active, advanced, current)
    return value[current]


class DecisionTreeClassifier(Classifier):
    """Binary CART tree with weighted Gini splitting.

    Parameters
    ----------
    max_depth:
        Depth budget; small values keep the tree human-readable (the
        transparency experiments sweep this).
    min_samples_leaf:
        Minimum *weighted* fraction-equivalent sample count per leaf.
    min_impurity_decrease:
        Minimum Gini improvement to accept a split.
    max_features:
        Number of features considered per split (``None`` = all); the
        forest sets this for decorrelation.
    rng:
        Generator used only when ``max_features`` subsamples features.
        ``None`` creates one seeded fallback generator *per fit* — the
        draw still differs from node to node (deterministically), it
        just needs no caller-provided stream.
    """

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 5,
                 min_impurity_decrease: float = 0.0,
                 max_features: int | None = None,
                 rng: np.random.Generator | None = None):
        if max_depth < 1:
            raise DataError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise DataError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.rng = rng
        self._nodes: list[_Node] = []
        self._n_features = 0
        self._soa: _TreeArrays | None = None
        self._feature_rng: np.random.Generator | None = None

    # -- fitting ------------------------------------------------------------

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        """Grow the tree depth-first."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if len(X) != len(y):
            raise DataError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise DataError("cannot fit a tree on zero rows")
        weights = check_weights(sample_weight, len(y))
        self._n_features = X.shape[1]
        self._nodes = []
        # One fallback stream per fit: max_features subsampling must draw
        # a *different* subset at every node while staying deterministic.
        self._feature_rng = (self.rng if self.rng is not None
                             else np.random.default_rng(0))
        # Pre-sort every feature once; nodes partition this matrix
        # instead of re-argsorting their rows at every candidate split.
        presorted = np.argsort(X, axis=0, kind="stable")
        self._grow(X, y, weights, np.arange(len(y)), presorted, depth=0)
        self._refresh_arrays()
        self._mark_fitted()
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, weights: np.ndarray,
              indices: np.ndarray, presorted: np.ndarray, depth: int) -> int:
        node_index = len(self._nodes)
        w = weights[indices]
        total = w.sum()
        pos = float(w[y[indices] == 1.0].sum())
        probability = pos / total if total > 0 else 0.5
        node = _Node(probability=probability, weight=float(total), depth=depth)
        self._nodes.append(node)

        if (depth >= self.max_depth or len(indices) < 2 * self.min_samples_leaf
                or probability in (0.0, 1.0)):
            return node_index
        split = self._best_split(X, y, weights, indices, presorted)
        if split is None:
            return node_index
        feature, threshold = split
        mask = X[indices, feature] <= threshold
        left_idx, right_idx = indices[mask], indices[~mask]
        # Partition each column's presorted order by membership: child
        # orders stay sorted (stable subsequences of a stable sort).
        in_left = np.zeros(len(X), dtype=bool)
        in_left[left_idx] = True
        member = in_left[presorted]
        n_features = presorted.shape[1]
        left_sorted = presorted.T[member.T].reshape(
            n_features, len(left_idx)).T
        right_sorted = presorted.T[~member.T].reshape(
            n_features, len(right_idx)).T
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X, y, weights, left_idx, left_sorted, depth + 1)
        node.right = self._grow(X, y, weights, right_idx, right_sorted,
                                depth + 1)
        return node_index

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        rng = (self._feature_rng if self._feature_rng is not None
               else np.random.default_rng(0))
        return rng.choice(n_features, size=self.max_features, replace=False)

    def _best_split(self, X: np.ndarray, y: np.ndarray, weights: np.ndarray,
                    indices: np.ndarray,
                    presorted: np.ndarray) -> tuple[int, float] | None:
        """Best (feature, threshold) by one masked-gain matrix computation.

        All boundaries of all candidate features are scored at once.
        The winner is the first strict maximum in (feature order,
        boundary order) — exactly the argmax the historical nested loop
        produced, so fitted trees are byte-identical to it.
        """
        m = len(indices)
        w = weights[indices]
        labels = y[indices]
        total = w.sum()
        total_pos = float(w[labels == 1.0].sum())
        parent_impurity = _weighted_gini(total_pos, total)

        features = self._candidate_features(X.shape[1])
        order = presorted[:, features]                      # (m, c) row ids
        sorted_values = X[order, features[None, :]]         # (m, c)
        sorted_w = weights[order]
        sorted_pos = sorted_w * (y[order] == 1.0)
        cum_w = np.cumsum(sorted_w, axis=0)
        cum_pos = np.cumsum(sorted_pos, axis=0)

        left_w = cum_w[:-1]
        right_w = total - left_w
        left_pos = cum_pos[:-1]
        right_pos = total_pos - left_pos
        with np.errstate(divide="ignore", invalid="ignore"):
            p_left = np.where(left_w > 0, left_pos / left_w, 0.0)
            p_right = np.where(right_w > 0, right_pos / right_w, 0.0)
        gini_left = np.where(left_w > 0, 2.0 * p_left * (1.0 - p_left), 0.0)
        gini_right = np.where(right_w > 0,
                              2.0 * p_right * (1.0 - p_right), 0.0)
        impurity = left_w / total * gini_left + right_w / total * gini_right
        gain = parent_impurity - impurity                   # (m-1, c)

        # Valid boundaries: distinct consecutive values, both children
        # large enough, gain above the floor.
        n_left = np.arange(1, m)
        valid = np.diff(sorted_values, axis=0) > 0
        valid &= (n_left >= self.min_samples_leaf)[:, None]
        valid &= (n_left <= m - self.min_samples_leaf)[:, None]
        valid &= gain > self.min_impurity_decrease + 1e-12
        if not valid.any():
            return None
        gains = np.where(valid, gain, -np.inf)
        # Feature-major argmax = first (feature, boundary) strict max.
        flat = int(np.argmax(gains.T))
        column, boundary = divmod(flat, m - 1)
        midpoint = 0.5 * (
            sorted_values[boundary, column] + sorted_values[boundary + 1, column]
        )
        return int(features[column]), float(midpoint)

    # -- prediction -----------------------------------------------------------

    def _refresh_arrays(self) -> None:
        """Rebuild the structure-of-arrays mirror after node mutation."""
        nodes = self._nodes
        self._soa = _TreeArrays(
            feature=np.array([n.feature for n in nodes], dtype=np.intp),
            threshold=np.array([n.threshold for n in nodes], dtype=np.float64),
            left=np.array([n.left for n in nodes], dtype=np.intp),
            right=np.array([n.right for n in nodes], dtype=np.intp),
            value=np.array([n.probability for n in nodes], dtype=np.float64),
        )

    def _arrays(self) -> _TreeArrays:
        if self._soa is None:
            self._refresh_arrays()
        return self._soa

    def _leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """Node index of the leaf each row reaches."""
        return _descend(self._arrays(), X)

    def predict_proba(self, X) -> np.ndarray:
        """Leaf positive-class fractions, computed by batched descent."""
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self._n_features:
            raise DataError(
                f"expected {self._n_features} features, got {X.shape[1]}"
            )
        arrays = self._arrays()
        return arrays.value[_descend(arrays, X)]

    # -- introspection (transparency pillar) --------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        self._require_fitted()
        return len(self._nodes)

    @property
    def n_leaves(self) -> int:
        """Leaf count — the usual proxy for rule-set size."""
        self._require_fitted()
        return sum(1 for node in self._nodes if node.feature == -1)

    def depth(self) -> int:
        """Realised depth of the fitted tree."""
        self._require_fitted()
        return max(node.depth for node in self._nodes)

    def feature_importances(self) -> np.ndarray:
        """Weighted impurity decrease attributed to each feature."""
        self._require_fitted()
        importances = np.zeros(self._n_features)
        for node in self._nodes:
            if node.feature == -1:
                continue
            left, right = self._nodes[node.left], self._nodes[node.right]
            parent_imp = _weighted_gini(node.probability * node.weight, node.weight)
            child_imp = (
                _weighted_gini(left.probability * left.weight, left.weight)
                + _weighted_gini(right.probability * right.weight, right.weight)
            )
            importances[node.feature] += max(0.0, parent_imp - child_imp)
        total = importances.sum()
        return importances / total if total > 0 else importances

    def to_rules(self, feature_names: list[str] | None = None) -> list[str]:
        """Render the tree as human-readable decision rules."""
        self._require_fitted()

        def name(feature: int) -> str:
            if feature_names is not None:
                return feature_names[feature]
            return f"x[{feature}]"

        rules: list[str] = []

        def walk(node_index: int, conditions: list[str]) -> None:
            node = self._nodes[node_index]
            if node.feature == -1:
                clause = " and ".join(conditions) if conditions else "always"
                rules.append(f"if {clause}: P(positive) = {node.probability:.3f}")
                return
            walk(node.left,
                 conditions + [f"{name(node.feature)} <= {node.threshold:.4g}"])
            walk(node.right,
                 conditions + [f"{name(node.feature)} > {node.threshold:.4g}"])

        walk(0, [])
        return rules
