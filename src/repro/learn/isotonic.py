"""Isotonic regression calibration (pool-adjacent-violators).

The non-parametric companion to Platt scaling: fits the best *monotone*
map from scores to outcome frequencies.  More flexible than a sigmoid,
so it wins when the miscalibration is not sigmoid-shaped — the usual
case for boosted trees, whose scores cluster near 0 and 1.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError, NotFittedError


def pool_adjacent_violators(values: np.ndarray,
                            weights: np.ndarray | None = None) -> np.ndarray:
    """The PAVA solution: the closest non-decreasing sequence (weighted L2)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or len(values) == 0:
        raise DataError("values must be a non-empty 1-D array")
    if weights is None:
        weights = np.ones(len(values))
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != values.shape or np.any(weights <= 0):
            raise DataError("weights must be positive and aligned")

    # Blocks as (mean, weight, count) merged while order is violated.
    means: list[float] = []
    block_weights: list[float] = []
    counts: list[int] = []
    for value, weight in zip(values, weights):
        means.append(float(value))
        block_weights.append(float(weight))
        counts.append(1)
        while len(means) > 1 and means[-2] > means[-1]:
            merged_weight = block_weights[-2] + block_weights[-1]
            merged_mean = (
                means[-2] * block_weights[-2] + means[-1] * block_weights[-1]
            ) / merged_weight
            merged_count = counts[-2] + counts[-1]
            for stack in (means, block_weights, counts):
                stack.pop()
                stack.pop()
            means.append(merged_mean)
            block_weights.append(merged_weight)
            counts.append(merged_count)
    out = np.empty(len(values))
    position = 0
    for mean, count in zip(means, counts):
        out[position:position + count] = mean
        position += count
    return out


class IsotonicCalibrator:
    """Monotone score-to-probability recalibration.

    Fit on held-out (scores, outcomes); transform interpolates the
    fitted step function (linear between knots, clamped at the ends).
    """

    def __init__(self):
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, scores, y_true) -> "IsotonicCalibrator":
        """Run PAVA over outcomes sorted by score."""
        scores = np.asarray(scores, dtype=np.float64)
        y_true = np.asarray(y_true, dtype=np.float64)
        if scores.shape != y_true.shape or scores.ndim != 1:
            raise DataError("scores and y_true must be aligned 1-D arrays")
        if len(scores) < 2:
            raise DataError("need at least 2 calibration points")
        order = np.argsort(scores, kind="stable")
        fitted = pool_adjacent_violators(y_true[order])
        # Collapse ties in score to one knot (mean fitted value).
        sorted_scores = scores[order]
        knots_x: list[float] = []
        knots_y: list[float] = []
        index = 0
        while index < len(sorted_scores):
            tie_end = index
            while (tie_end + 1 < len(sorted_scores)
                   and sorted_scores[tie_end + 1] == sorted_scores[index]):
                tie_end += 1
            knots_x.append(float(sorted_scores[index]))
            knots_y.append(float(fitted[index:tie_end + 1].mean()))
            index = tie_end + 1
        self._x = np.asarray(knots_x)
        self._y = np.asarray(knots_y)
        return self

    def transform(self, scores) -> np.ndarray:
        """Calibrated probabilities for new scores."""
        if self._x is None:
            raise NotFittedError("IsotonicCalibrator must be fit first")
        scores = np.asarray(scores, dtype=np.float64)
        return np.clip(np.interp(scores, self._x, self._y), 0.0, 1.0)
