"""Linear models: logistic regression and ridge regression.

Logistic regression is the toolkit's workhorse: it is the model whose
coefficients the transparency pillar can read directly, the base learner
for in-processing fairness methods, and the propensity model for the
causal estimators.  Fitting uses L-BFGS on the weighted, L2-penalised
log-loss.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.data.synth.base import sigmoid
from repro.exceptions import ConvergenceError, DataError
from repro.learn.base import (
    Classifier,
    Regressor,
    check_binary_labels,
    check_matrix,
    check_weights,
)


class LogisticRegression(Classifier):
    """Binary logistic regression with L2 regularisation.

    Parameters
    ----------
    l2:
        Strength of the L2 penalty on the weights (not the intercept).
    max_iter:
        L-BFGS iteration budget.
    tol:
        Gradient-norm tolerance for convergence.
    """

    def __init__(self, l2: float = 1.0, max_iter: int = 500, tol: float = 1e-6):
        if l2 < 0:
            raise DataError("l2 must be non-negative")
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y, sample_weight=None) -> "LogisticRegression":
        """Minimise the weighted penalised negative log-likelihood."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if len(X) != len(y):
            raise DataError(f"X has {len(X)} rows but y has {len(y)}")
        weights = check_weights(sample_weight, len(y))
        weights = weights / weights.mean()
        n_features = X.shape[1]

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            coef, intercept = theta[:n_features], theta[n_features]
            z = X @ coef + intercept
            p = sigmoid(z)
            eps = 1e-12
            loss = -np.sum(
                weights * (y * np.log(p + eps) + (1.0 - y) * np.log(1.0 - p + eps))
            )
            loss += 0.5 * self.l2 * coef @ coef
            residual = weights * (p - y)
            grad_coef = X.T @ residual + self.l2 * coef
            grad_intercept = residual.sum()
            return loss, np.append(grad_coef, grad_intercept)

        theta0 = np.zeros(n_features + 1)
        result = optimize.minimize(
            objective, theta0, jac=True, method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        if not result.success and result.status != 1:  # status 1 = maxiter
            raise ConvergenceError(
                f"logistic regression failed to converge: {result.message}"
            )
        self.coef_ = result.x[:n_features]
        self.intercept_ = float(result.x[n_features])
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        """P(y = 1 | x) via the fitted linear logit."""
        self._require_fitted()
        X = check_matrix(X)
        return np.asarray(sigmoid(X @ self.coef_ + self.intercept_))

    def decision_scores(self, X) -> np.ndarray:
        """Raw logits (monotone in the probability)."""
        self._require_fitted()
        return check_matrix(X) @ self.coef_ + self.intercept_


class RidgeRegression(Regressor):
    """Linear regression with an L2 penalty, solved in closed form."""

    def __init__(self, l2: float = 1.0):
        if l2 < 0:
            raise DataError("l2 must be non-negative")
        self.l2 = l2
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y, sample_weight=None) -> "RidgeRegression":
        """Solve the weighted normal equations."""
        X = check_matrix(X)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim != 1 or len(y) != len(X):
            raise DataError("y must be 1-D and match X's row count")
        weights = check_weights(sample_weight, len(y))
        sqrt_w = np.sqrt(weights / weights.mean())
        ones = np.ones((len(X), 1))
        design = np.hstack([X, ones]) * sqrt_w[:, None]
        target = y * sqrt_w
        penalty = self.l2 * np.eye(design.shape[1])
        penalty[-1, -1] = 0.0  # do not penalise the intercept
        theta = np.linalg.solve(
            design.T @ design + penalty, design.T @ target
        )
        self.coef_ = theta[:-1]
        self.intercept_ = float(theta[-1])
        self._mark_fitted()
        return self

    def predict(self, X) -> np.ndarray:
        """Linear point predictions."""
        self._require_fitted()
        return check_matrix(X) @ self.coef_ + self.intercept_
