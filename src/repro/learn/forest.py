"""Random forest: the mid-tier "accurate but opaque" model.

Bagged CART trees with per-split feature subsampling.  In the
transparency experiments the forest sits between the single tree
(readable) and the MLP (fully opaque) on the accuracy/comprehensibility
frontier.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import (
    Classifier,
    check_binary_labels,
    check_matrix,
    check_weights,
)
from repro.learn.tree import DecisionTreeClassifier, ensemble_leaf_values


class RandomForestClassifier(Classifier):
    """Ensemble of bootstrap-trained decision trees.

    Parameters
    ----------
    n_trees:
        Ensemble size.
    max_depth, min_samples_leaf:
        Passed to each tree.
    max_features:
        Features per split; ``None`` means ``ceil(sqrt(d))``.
    seed:
        Seeds the internal generator (bootstraps and feature draws).
    """

    def __init__(self, n_trees: int = 50, max_depth: int = 8,
                 min_samples_leaf: int = 3,
                 max_features: int | None = None, seed: int = 0):
        if n_trees < 1:
            raise DataError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: list[DecisionTreeClassifier] = []

    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        """Train each tree on a bootstrap resample."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if len(X) != len(y):
            raise DataError(f"X has {len(X)} rows but y has {len(y)}")
        weights = check_weights(sample_weight, len(y))
        rng = np.random.default_rng(self.seed)
        n_rows, n_features = X.shape
        per_split = self.max_features
        if per_split is None:
            per_split = max(1, int(np.ceil(np.sqrt(n_features))))
        self._trees = []
        for _ in range(self.n_trees):
            sample = rng.integers(0, n_rows, size=n_rows)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=per_split,
                rng=rng,
            )
            tree.fit(X[sample], y[sample], sample_weight=weights[sample])
            self._trees.append(tree)
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Average of the trees' leaf probabilities."""
        self._require_fitted()
        X = check_matrix(X)
        per_tree = ensemble_leaf_values(self._trees, X)  # (n, n_trees)
        # Accumulate column-by-column to keep the historical float sum
        # order (left-to-right over trees) byte-identical.
        probabilities = np.zeros(len(X), dtype=np.float64)
        for column in range(per_tree.shape[1]):
            probabilities += per_tree[:, column]
        return probabilities / len(self._trees)

    def feature_importances(self) -> np.ndarray:
        """Mean of per-tree impurity-decrease importances."""
        self._require_fitted()
        stacked = np.vstack([tree.feature_importances() for tree in self._trees])
        return stacked.mean(axis=0)
