"""Cross-validation and grid search over the table interface.

§2-Q2 warns that "if enough hypotheses are tested, one will eventually be
true for the sample data used" — model selection is hypothesis testing in
disguise, so scores here always come with their across-fold spread, and
grid search reports *every* configuration it tried (the forking paths are
recorded, not hidden).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.data.split import k_fold_indices
from repro.exceptions import DataError
from repro.learn import metrics as metrics_module
from repro.learn.base import Classifier
from repro.parallel import pmap, resolve_n_jobs

_METRICS = {
    "accuracy": lambda y, p: metrics_module.accuracy(y, (p >= 0.5).astype(float)),
    "auc": metrics_module.roc_auc,
    "log_loss": metrics_module.log_loss,
    "brier": metrics_module.brier_score,
}
_HIGHER_IS_BETTER = {"accuracy": True, "auc": True, "log_loss": False, "brier": False}


@dataclass(frozen=True)
class CVResult:
    """Per-fold scores for one configuration."""

    scores: np.ndarray
    metric: str

    @property
    def mean(self) -> float:
        """Mean across folds."""
        return float(np.mean(self.scores))

    @property
    def std(self) -> float:
        """Standard deviation across folds."""
        return float(np.std(self.scores))


class _FoldScoreTask:
    """Picklable worker: fit a clone on one fold and score the held-out."""

    __slots__ = ("model", "X", "y", "metric")

    def __init__(self, model: Classifier, X: np.ndarray, y: np.ndarray,
                 metric: str):
        self.model = model
        self.X = X
        self.y = y
        self.metric = metric

    def __call__(self, fold: tuple[np.ndarray, np.ndarray]) -> float:
        train_idx, test_idx = fold
        fold_model = self.model.clone()
        fold_model.fit(self.X[train_idx], self.y[train_idx])
        probabilities = fold_model.predict_proba(self.X[test_idx])
        return _METRICS[self.metric](self.y[test_idx], probabilities)


def cross_val_score(model: Classifier, X, y, n_folds: int,
                    rng: np.random.Generator | None = None,
                    metric: str = "accuracy",
                    n_jobs: int | None = None,
                    backend: str = "thread",
                    folds: list[tuple[np.ndarray, np.ndarray]] | None = None,
                    ) -> CVResult:
    """K-fold cross-validation of a classifier on a design matrix.

    ``folds`` accepts precomputed ``(train_idx, test_idx)`` pairs so
    several candidates can share one split (see :func:`grid_search`);
    otherwise the split is drawn from ``rng``.  ``n_jobs`` fits the
    folds in parallel (``None`` defers to ``$REPRO_N_JOBS``) with
    scores assembled in fold order — identical for every setting.
    """
    if metric not in _METRICS:
        raise DataError(f"unknown metric {metric!r}; choose from {sorted(_METRICS)}")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if folds is None:
        if rng is None:
            raise DataError("cross_val_score needs an rng (or explicit folds)")
        folds = k_fold_indices(len(y), n_folds, rng)
    worker = _FoldScoreTask(model, X, y, metric)
    if resolve_n_jobs(n_jobs) == 1:
        scores = [worker(fold) for fold in folds]
    else:
        scores = pmap(worker, folds, n_jobs=n_jobs, backend=backend,
                      chunk_size=1, name="cross_val")
    return CVResult(np.asarray(scores), metric)


@dataclass
class GridSearchResult:
    """Everything a grid search tried, plus the winner.

    ``trials`` keeps the full forking-paths record: (params, CVResult)
    for every configuration, in evaluation order.
    """

    best_params: dict[str, object]
    best_score: float
    metric: str
    trials: list[tuple[dict[str, object], CVResult]] = field(default_factory=list)

    @property
    def n_configurations(self) -> int:
        """How many hypotheses the search implicitly tested."""
        return len(self.trials)


class _CandidateTask:
    """Picklable worker: cross-validate one grid candidate on shared folds."""

    __slots__ = ("model_factory", "X", "y", "n_folds", "metric", "folds")

    def __init__(self, model_factory, X, y, n_folds: int, metric: str,
                 folds: list[tuple[np.ndarray, np.ndarray]]):
        self.model_factory = model_factory
        self.X = X
        self.y = y
        self.n_folds = n_folds
        self.metric = metric
        self.folds = folds

    def __call__(self, params: dict[str, object]) -> CVResult:
        return cross_val_score(
            self.model_factory(**params), self.X, self.y, self.n_folds,
            metric=self.metric, folds=self.folds,
        )


def grid_search(model_factory, grid: dict[str, list], X, y, n_folds: int,
                rng: np.random.Generator,
                metric: str = "accuracy",
                n_jobs: int | None = None,
                backend: str = "thread") -> GridSearchResult:
    """Exhaustive search over a parameter grid with k-fold scoring.

    ``model_factory`` is called with each parameter combination as keyword
    arguments and must return an unfitted classifier.

    The fold split is drawn from ``rng`` **once** and shared by every
    candidate — an apples-to-apples comparison (per-candidate splits
    add split noise to the selection) and the reason the search is
    deterministic however wide it fans out: with the split fixed up
    front, candidate evaluation is pure computation, and ``n_jobs``
    (``None`` defers to ``$REPRO_N_JOBS``) changes wall-clock only.
    """
    if not grid:
        raise DataError("grid must contain at least one parameter")
    names = list(grid)
    folds = k_fold_indices(len(y), n_folds, rng)
    candidates = [
        dict(zip(names, combo))
        for combo in itertools.product(*(grid[name] for name in names))
    ]
    worker = _CandidateTask(model_factory, X, y, n_folds, metric, folds)
    if resolve_n_jobs(n_jobs) == 1:
        results = [worker(params) for params in candidates]
    else:
        results = pmap(worker, candidates, n_jobs=n_jobs, backend=backend,
                       chunk_size=1, name="grid_search")
    trials = list(zip(candidates, results))
    higher = _HIGHER_IS_BETTER[metric]
    best_params, best_result = (
        max(trials, key=lambda item: item[1].mean) if higher
        else min(trials, key=lambda item: item[1].mean)
    )
    return GridSearchResult(
        best_params=best_params, best_score=best_result.mean,
        metric=metric, trials=trials,
    )
