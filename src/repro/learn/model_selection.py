"""Cross-validation and grid search over the table interface.

§2-Q2 warns that "if enough hypotheses are tested, one will eventually be
true for the sample data used" — model selection is hypothesis testing in
disguise, so scores here always come with their across-fold spread, and
grid search reports *every* configuration it tried (the forking paths are
recorded, not hidden).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.data.split import k_fold_indices
from repro.exceptions import DataError
from repro.learn import metrics as metrics_module
from repro.learn.base import Classifier

_METRICS = {
    "accuracy": lambda y, p: metrics_module.accuracy(y, (p >= 0.5).astype(float)),
    "auc": metrics_module.roc_auc,
    "log_loss": metrics_module.log_loss,
    "brier": metrics_module.brier_score,
}
_HIGHER_IS_BETTER = {"accuracy": True, "auc": True, "log_loss": False, "brier": False}


@dataclass(frozen=True)
class CVResult:
    """Per-fold scores for one configuration."""

    scores: np.ndarray
    metric: str

    @property
    def mean(self) -> float:
        """Mean across folds."""
        return float(np.mean(self.scores))

    @property
    def std(self) -> float:
        """Standard deviation across folds."""
        return float(np.std(self.scores))


def cross_val_score(model: Classifier, X, y, n_folds: int,
                    rng: np.random.Generator,
                    metric: str = "accuracy") -> CVResult:
    """K-fold cross-validation of a classifier on a design matrix."""
    if metric not in _METRICS:
        raise DataError(f"unknown metric {metric!r}; choose from {sorted(_METRICS)}")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    scorer = _METRICS[metric]
    scores = []
    for train_idx, test_idx in k_fold_indices(len(y), n_folds, rng):
        fold_model = model.clone()
        fold_model.fit(X[train_idx], y[train_idx])
        probabilities = fold_model.predict_proba(X[test_idx])
        scores.append(scorer(y[test_idx], probabilities))
    return CVResult(np.asarray(scores), metric)


@dataclass
class GridSearchResult:
    """Everything a grid search tried, plus the winner.

    ``trials`` keeps the full forking-paths record: (params, CVResult)
    for every configuration, in evaluation order.
    """

    best_params: dict[str, object]
    best_score: float
    metric: str
    trials: list[tuple[dict[str, object], CVResult]] = field(default_factory=list)

    @property
    def n_configurations(self) -> int:
        """How many hypotheses the search implicitly tested."""
        return len(self.trials)


def grid_search(model_factory, grid: dict[str, list], X, y, n_folds: int,
                rng: np.random.Generator,
                metric: str = "accuracy") -> GridSearchResult:
    """Exhaustive search over a parameter grid with k-fold scoring.

    ``model_factory`` is called with each parameter combination as keyword
    arguments and must return an unfitted classifier.
    """
    if not grid:
        raise DataError("grid must contain at least one parameter")
    names = list(grid)
    trials: list[tuple[dict[str, object], CVResult]] = []
    seed_sequence = rng.bit_generator.seed_seq.spawn(
        int(np.prod([len(grid[name]) for name in names]))
    )
    for combo_index, combo in enumerate(itertools.product(*(grid[name] for name in names))):
        params = dict(zip(names, combo))
        fold_rng = np.random.default_rng(seed_sequence[combo_index])
        result = cross_val_score(
            model_factory(**params), X, y, n_folds, fold_rng, metric
        )
        trials.append((params, result))
    higher = _HIGHER_IS_BETTER[metric]
    best_params, best_result = (
        max(trials, key=lambda item: item[1].mean) if higher
        else min(trials, key=lambda item: item[1].mean)
    )
    return GridSearchResult(
        best_params=best_params, best_score=best_result.mean,
        metric=metric, trials=trials,
    )
