"""Estimator protocol for the from-scratch learning library.

The toolkit standardises on *binary* classification with labels ``{0, 1}``
(every decision the paper discusses — approve/deny, hire/reject, flag/pass
— is binary) plus scalar regression.  ``predict_proba`` returns the
probability of the positive class as a 1-D array, which keeps the
fairness, conformal and transparency code simple and uniform.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import DataError, NotFittedError


def check_matrix(X) -> np.ndarray:
    """Validate and coerce a 2-D float design matrix."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataError(f"expected a 2-D design matrix, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise DataError("design matrix contains NaN or infinity")
    return X


def check_binary_labels(y) -> np.ndarray:
    """Validate and coerce binary 0/1 labels."""
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise DataError(f"expected 1-D labels, got shape {y.shape}")
    values = np.unique(y)
    if not np.all(np.isin(values, (0.0, 1.0))):
        raise DataError(f"labels must be 0/1, got values {values}")
    return y


def check_weights(sample_weight, n_rows: int) -> np.ndarray:
    """Validate sample weights, defaulting to uniform."""
    if sample_weight is None:
        return np.ones(n_rows, dtype=np.float64)
    weights = np.asarray(sample_weight, dtype=np.float64)
    if weights.shape != (n_rows,):
        raise DataError(
            f"sample_weight shape {weights.shape} does not match {n_rows} rows"
        )
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise DataError("sample weights must be finite and non-negative")
    if weights.sum() <= 0:
        raise DataError("sample weights must not all be zero")
    return weights


class BaseEstimator(abc.ABC):
    """Common fitted-state bookkeeping."""

    _fitted: bool = False

    def _mark_fitted(self) -> None:
        self._fitted = True

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fit before use"
            )

    def params(self) -> dict[str, object]:
        """Public hyper-parameters (for model cards and provenance).

        Follows the sklearn convention: fitted state ends with a trailing
        underscore and is excluded; private state starts with one.
        """
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and not key.endswith("_")
        }

    def clone(self) -> "BaseEstimator":
        """A fresh, unfitted copy with the same hyper-parameters."""
        return type(self)(**self.params())


class Classifier(BaseEstimator):
    """Binary probabilistic classifier."""

    @abc.abstractmethod
    def fit(self, X, y, sample_weight=None) -> "Classifier":
        """Learn from a design matrix and 0/1 labels."""

    @abc.abstractmethod
    def predict_proba(self, X) -> np.ndarray:
        """P(y = 1 | x) for each row, shape ``(n,)``."""

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 decisions at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.float64)

    def decision_scores(self, X) -> np.ndarray:
        """Monotone score used for ranking; defaults to the probability."""
        return self.predict_proba(X)


class Regressor(BaseEstimator):
    """Scalar regressor."""

    @abc.abstractmethod
    def fit(self, X, y, sample_weight=None) -> "Regressor":
        """Learn from a design matrix and real-valued targets."""

    @abc.abstractmethod
    def predict(self, X) -> np.ndarray:
        """Point predictions, shape ``(n,)``."""
