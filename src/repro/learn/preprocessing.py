"""Table-to-matrix encoding: standardised numerics + one-hot categoricals.

The encoder is where the FACT roles bite: by default it encodes only
FEATURE columns, so sensitive attributes and identifiers never reach a
model unless the caller opts in explicitly — "responsible by design" at
the representation layer.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnType
from repro.data.table import Table
from repro.exceptions import DataError, NotFittedError


class StandardScaler:
    """Center/scale numeric arrays to zero mean, unit variance."""

    def __init__(self):
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Record column means and standard deviations."""
        X = np.asarray(X, dtype=np.float64)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the recorded centering and scaling."""
        if self._mean is None:
            raise NotFittedError("StandardScaler must be fit before transform")
        return (np.asarray(X, dtype=np.float64) - self._mean) / self._scale

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one step."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo the scaling (used by counterfactual search)."""
        if self._mean is None:
            raise NotFittedError("StandardScaler must be fit before use")
        return np.asarray(X, dtype=np.float64) * self._scale + self._mean


class FeatureEncoder:
    """Encode a :class:`Table` into a dense design matrix.

    Numeric columns are standardised; categorical columns are one-hot
    encoded with category levels frozen at fit time (unseen levels at
    transform time map to the all-zeros row, a deliberate "novel category"
    encoding rather than an error).
    """

    def __init__(self, columns: list[str] | None = None,
                 standardize: bool = True,
                 include_sensitive: bool = False):
        self.columns = columns
        self.standardize = standardize
        self.include_sensitive = include_sensitive
        self._numeric: list[str] = []
        self._categorical: list[str] = []
        self._levels: dict[str, list[str]] = {}
        self._scaler: StandardScaler | None = None
        self._feature_names: list[str] = []
        self._fitted = False

    def _resolve_columns(self, table: Table) -> list[str]:
        if self.columns is not None:
            return list(self.columns)
        names = list(table.schema.feature_names)
        if self.include_sensitive:
            names += table.schema.sensitive_names
        if not names:
            raise DataError("table has no FEATURE columns to encode")
        return names

    def fit(self, table: Table) -> "FeatureEncoder":
        """Freeze the encoding using ``table``'s columns and levels."""
        names = self._resolve_columns(table)
        self._numeric = []
        self._categorical = []
        self._levels = {}
        for name in names:
            spec = table.schema[name]
            if spec.ctype is ColumnType.NUMERIC:
                self._numeric.append(name)
            else:
                self._categorical.append(name)
                self._levels[name] = [
                    str(level) for level in table.unique(name)
                ]
        self._feature_names = list(self._numeric)
        for name in self._categorical:
            self._feature_names += [
                f"{name}={level}" for level in self._levels[name]
            ]
        if self.standardize and self._numeric:
            numeric_block = np.column_stack(table.columns(self._numeric))
            self._scaler = StandardScaler().fit(numeric_block)
        else:
            self._scaler = None
        self._fitted = True
        return self

    def transform(self, table: Table) -> np.ndarray:
        """Encode ``table`` with the frozen mapping."""
        if not self._fitted:
            raise NotFittedError("FeatureEncoder must be fit before transform")
        blocks: list[np.ndarray] = []
        if self._numeric:
            numeric_block = np.column_stack(table.columns(self._numeric))
            if self._scaler is not None:
                numeric_block = self._scaler.transform(numeric_block)
            blocks.append(numeric_block)
        for name in self._categorical:
            values = table.column(name)
            levels = self._levels[name]
            onehot = np.zeros((table.n_rows, len(levels)), dtype=np.float64)
            for column_index, level in enumerate(levels):
                onehot[:, column_index] = values == level
            blocks.append(onehot)
        if not blocks:
            return np.zeros((table.n_rows, 0))
        return np.hstack(blocks)

    def fit_transform(self, table: Table) -> np.ndarray:
        """Fit then transform in one step."""
        return self.fit(table).transform(table)

    @property
    def feature_names(self) -> list[str]:
        """Names of the encoded columns, in matrix order."""
        if not self._fitted:
            raise NotFittedError("FeatureEncoder must be fit before use")
        return list(self._feature_names)

    @property
    def n_features(self) -> int:
        """Width of the encoded design matrix."""
        return len(self.feature_names)


def encode_labels(values: np.ndarray, positive: object) -> np.ndarray:
    """Binarise a column: 1.0 where equal to ``positive``, else 0.0."""
    return (np.asarray(values) == positive).astype(np.float64)
