"""k-nearest-neighbour classification.

Besides being a baseline classifier, the neighbour machinery backs two
responsibility tools: *situation testing* for individual fairness (find a
person's cross-group twins and compare decisions) and the consistency
metric (do similar people get similar outcomes?).

Hot-path design (see docs/api.md, "Hot kernels & fusion"): queries are
processed in blocks so the working distance matrix stays bounded
(``_BLOCK_ELEMENTS`` floats) no matter how many queries arrive, and each
block selects its ``k`` nearest rows on the *squared* distances with an
``np.partition`` order statistic — no full ``argsort`` and no full
``sqrt`` of every pool distance; ``sqrt`` runs only on the selected
candidates.  The selection is provably identical to
``np.argsort(distances, axis=1, kind="stable")[:, :k]`` of the rounded
distances: monotone ``sqrt`` commutes with order statistics, a 1e-15
relative margin on the k-th squared value admits every entry whose
*rounded* root could tie it (IEEE sqrt errs by <= 0.5 ulp, so equal
roots imply squares within a factor ``(1+eps)^4``), and the survivors
are ordered by ``(distance, pool index)`` exactly as a stable full sort
would.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import (
    Classifier,
    check_binary_labels,
    check_matrix,
    check_weights,
)

# Working-set bound for blocked search: the per-block distance matrix
# holds at most this many float64s (~64 MB).
_BLOCK_ELEMENTS = 8_000_000


def pairwise_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between the rows of ``A`` and ``B``."""
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    squared = (
        np.sum(A**2, axis=1)[:, None]
        + np.sum(B**2, axis=1)[None, :]
        - 2.0 * A @ B.T
    )
    return np.sqrt(np.maximum(squared, 0.0))


def _block_rows(n_pool: int) -> int:
    return max(1, _BLOCK_ELEMENTS // max(1, n_pool))


# Relative margin admitting every squared value whose *rounded* root
# could equal the k-th distance: correctly-rounded sqrt errs by at most
# half an ulp, so fl(sqrt(s)) <= fl(sqrt(t)) implies s <= t*(1+eps)^4
# with eps ~ 1.1e-16; 1e-15 covers that with room to spare.
_SQRT_TIE_MARGIN = 1.0 + 1e-15


def _topk_block(squared: np.ndarray,
                k: int) -> tuple[np.ndarray, np.ndarray]:
    """Stable-sort-exact top-``k`` of a clamped *squared*-distance block.

    Returns ``(indices, distances)`` of shape ``(rows, k)``, ordered by
    ``(distance, pool index)`` — byte-identical to a stable full
    ``argsort`` of ``np.sqrt(squared)`` truncated to ``k`` columns.
    Only the candidate entries are ever square-rooted.
    """
    rows, n_pool = squared.shape
    if k >= n_pool:
        distances = np.sqrt(squared)
        order = np.argsort(distances, axis=1, kind="stable")[:, :k]
        return order, np.take_along_axis(distances, order, axis=1)
    # The k-th smallest squared value; monotone sqrt commutes with order
    # statistics, so sqrt(kth) is the k-th smallest distance.
    kth = np.partition(squared, k - 1, axis=1)[:, k - 1]
    candidate = squared <= (kth * _SQRT_TIE_MARGIN)[:, None]
    counts = candidate.sum(axis=1)
    if counts.max() == k:
        # No rounding-boundary extras: the candidates ARE the top-k.
        # np.nonzero is row-major, so each row's columns ascend.
        row_ids, col_ids = np.nonzero(candidate)
        indices = col_ids.reshape(rows, k)
        distances = np.sqrt(squared[row_ids, col_ids].reshape(rows, k))
        # Candidates sit in ascending pool order, so a stable distance
        # sort yields (distance, pool index) — the full stable order.
        order = np.argsort(distances, axis=1, kind="stable")
        return (np.take_along_axis(indices, order, axis=1),
                np.take_along_axis(distances, order, axis=1))
    # Some rows carry ties or margin extras: the candidate superset
    # still contains the exact top-k, so per-row (distance, pool index)
    # selection among candidates is exact.
    indices = np.empty((rows, k), dtype=np.intp)
    values = np.empty((rows, k), dtype=np.float64)
    for row in range(rows):
        cols = np.nonzero(candidate[row])[0]
        d = np.sqrt(squared[row, cols])
        order = np.argsort(d, kind="stable")[:k]
        indices[row] = cols[order]
        values[row] = d[order]
    return indices, values


def _blocked_search(queries: np.ndarray, pool: np.ndarray,
                    k: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-``k`` neighbour (indices, distances) with bounded memory."""
    queries = np.asarray(queries, dtype=np.float64)
    pool = np.asarray(pool, dtype=np.float64)
    n = len(queries)
    step = _block_rows(len(pool))
    indices = np.empty((n, k), dtype=np.intp)
    values = np.empty((n, k), dtype=np.float64)
    pool_sq = np.sum(pool**2, axis=1)[None, :]
    for start in range(0, n, step):
        stop = min(start + step, n)
        block = queries[start:stop]
        # Same association order as pairwise_distances, so the squared
        # values (and their roots) are byte-identical to it.
        squared = (
            np.sum(block**2, axis=1)[:, None]
            + pool_sq
            - 2.0 * block @ pool.T
        )
        np.maximum(squared, 0.0, out=squared)
        indices[start:stop], values[start:stop] = _topk_block(squared, k)
    return indices, values


def nearest_indices(queries: np.ndarray, pool: np.ndarray,
                    k: int) -> np.ndarray:
    """Indices into ``pool`` of the ``k`` nearest rows for each query."""
    if k < 1:
        raise DataError("k must be >= 1")
    if len(pool) < k:
        raise DataError(f"pool has {len(pool)} rows, need at least {k}")
    return _blocked_search(queries, pool, k)[0]


class KNeighborsClassifier(Classifier):
    """Weighted k-NN with distance or uniform vote weighting."""

    def __init__(self, k: int = 5, distance_weighted: bool = False):
        if k < 1:
            raise DataError("k must be >= 1")
        self.k = k
        self.distance_weighted = distance_weighted
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._w: np.ndarray | None = None

    def fit(self, X, y, sample_weight=None) -> "KNeighborsClassifier":
        """Memorise the training set."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if len(X) != len(y):
            raise DataError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) < self.k:
            raise DataError(f"need at least k={self.k} training rows")
        self._X = X
        self._y = y
        self._w = check_weights(sample_weight, len(y))
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Weighted positive-vote fraction among the k nearest points."""
        self._require_fitted()
        X = check_matrix(X)
        neighbour_idx, d = _blocked_search(X, self._X, self.k)
        votes = self._y[neighbour_idx]
        weights = self._w[neighbour_idx]
        if self.distance_weighted:
            weights = weights / (d + 1e-9)
        return (votes * weights).sum(axis=1) / weights.sum(axis=1)
