"""k-nearest-neighbour classification.

Besides being a baseline classifier, the neighbour machinery backs two
responsibility tools: *situation testing* for individual fairness (find a
person's cross-group twins and compare decisions) and the consistency
metric (do similar people get similar outcomes?).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import (
    Classifier,
    check_binary_labels,
    check_matrix,
    check_weights,
)


def pairwise_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between the rows of ``A`` and ``B``."""
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    squared = (
        np.sum(A**2, axis=1)[:, None]
        + np.sum(B**2, axis=1)[None, :]
        - 2.0 * A @ B.T
    )
    return np.sqrt(np.maximum(squared, 0.0))


def nearest_indices(queries: np.ndarray, pool: np.ndarray,
                    k: int) -> np.ndarray:
    """Indices into ``pool`` of the ``k`` nearest rows for each query."""
    if k < 1:
        raise DataError("k must be >= 1")
    if len(pool) < k:
        raise DataError(f"pool has {len(pool)} rows, need at least {k}")
    distances = pairwise_distances(queries, pool)
    return np.argsort(distances, axis=1, kind="stable")[:, :k]


class KNeighborsClassifier(Classifier):
    """Weighted k-NN with distance or uniform vote weighting."""

    def __init__(self, k: int = 5, distance_weighted: bool = False):
        if k < 1:
            raise DataError("k must be >= 1")
        self.k = k
        self.distance_weighted = distance_weighted
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._w: np.ndarray | None = None

    def fit(self, X, y, sample_weight=None) -> "KNeighborsClassifier":
        """Memorise the training set."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if len(X) != len(y):
            raise DataError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) < self.k:
            raise DataError(f"need at least k={self.k} training rows")
        self._X = X
        self._y = y
        self._w = check_weights(sample_weight, len(y))
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Weighted positive-vote fraction among the k nearest points."""
        self._require_fitted()
        X = check_matrix(X)
        distances = pairwise_distances(X, self._X)
        neighbour_idx = np.argsort(distances, axis=1, kind="stable")[:, :self.k]
        votes = self._y[neighbour_idx]
        weights = self._w[neighbour_idx]
        if self.distance_weighted:
            d = np.take_along_axis(distances, neighbour_idx, axis=1)
            weights = weights / (d + 1e-9)
        return (votes * weights).sum(axis=1) / weights.sum(axis=1)
