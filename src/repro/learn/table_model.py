"""Glue between tables and estimators: the role-aware model wrapper.

``TableClassifier`` is what the rest of the toolkit trains and audits: it
encodes FEATURE columns (sensitive attributes excluded unless explicitly
opted in), binarises the TARGET column, and exposes table-level
prediction.  Fairness mitigators, the pipeline stages, explainers and the
FACT auditor all speak this interface.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.data.schema import ColumnType
from repro.data.table import Table
from repro.exceptions import DataError
from repro.learn.base import Classifier
from repro.learn.preprocessing import FeatureEncoder, encode_labels


class TableClassifier:
    """A classifier bound to a table schema through a feature encoder.

    Parameters
    ----------
    estimator:
        Any :class:`repro.learn.base.Classifier`.
    include_sensitive:
        Whether SENSITIVE columns are offered to the model.  Default
        ``False`` — and E1 demonstrates why that is *not* sufficient.
    columns:
        Explicit feature columns, overriding role-based selection.
    positive_label:
        For categorical targets, the level treated as the positive class.
    threshold:
        Default decision threshold for :meth:`predict`.
    """

    def __init__(self, estimator: Classifier,
                 include_sensitive: bool = False,
                 columns: list[str] | None = None,
                 positive_label: object = 1.0,
                 threshold: float = 0.5):
        self.estimator = estimator
        self.include_sensitive = include_sensitive
        self.columns = columns
        self.positive_label = positive_label
        self.threshold = threshold
        self.encoder = FeatureEncoder(
            columns=columns, include_sensitive=include_sensitive
        )
        self._target_name: str | None = None

    # -- label handling -----------------------------------------------------

    def labels(self, table: Table, target: str | None = None) -> np.ndarray:
        """Binary labels extracted from the table's target column."""
        name = target or self._target_name or table.target_name
        if name is None:
            raise DataError("no target column declared or named")
        spec = table.schema[name]
        values = table.column(name)
        if spec.ctype is ColumnType.NUMERIC:
            unique = np.unique(values)
            if not np.all(np.isin(unique, (0.0, 1.0))):
                raise DataError(
                    f"numeric target {name!r} must be 0/1, got {unique}"
                )
            return values.astype(np.float64)
        return encode_labels(values, self.positive_label)

    # -- training / prediction -------------------------------------------------

    @obs.instrument("table_classifier.fit")
    def fit(self, table: Table, target: str | None = None,
            sample_weight=None) -> "TableClassifier":
        """Encode ``table`` and train the wrapped estimator.

        When telemetry is configured, fit/predict calls are traced and
        their durations land in ``table_classifier.*.duration``
        histograms; unconfigured calls pay one ``is None`` check.
        """
        self._target_name = target or table.target_name
        if self._target_name is None:
            raise DataError("no target column declared or named")
        X = self.encoder.fit_transform(table)
        y = self.labels(table)
        self.estimator.fit(X, y, sample_weight=sample_weight)
        return self

    @obs.instrument("table_classifier.predict")
    def predict_proba(self, table: Table) -> np.ndarray:
        """P(positive | row) for every table row."""
        return self.estimator.predict_proba(self.encoder.transform(table))

    def predict(self, table: Table,
                threshold: float | None = None) -> np.ndarray:
        """Hard decisions at ``threshold`` (default: the wrapper's)."""
        cutoff = self.threshold if threshold is None else threshold
        return (self.predict_proba(table) >= cutoff).astype(np.float64)

    def decision_scores(self, table: Table) -> np.ndarray:
        """Monotone ranking scores from the wrapped estimator."""
        return self.estimator.decision_scores(self.encoder.transform(table))

    # -- introspection -----------------------------------------------------------

    @property
    def feature_names(self) -> list[str]:
        """Encoded feature names, in design-matrix order."""
        return self.encoder.feature_names

    @property
    def target_name(self) -> str | None:
        """Target column the model was fit against."""
        return self._target_name

    def params(self) -> dict[str, object]:
        """Wrapper + estimator hyper-parameters (for model cards)."""
        return {
            "estimator": type(self.estimator).__name__,
            "include_sensitive": self.include_sensitive,
            "columns": self.columns,
            "positive_label": self.positive_label,
            "threshold": self.threshold,
            **{f"estimator.{k}": v for k, v in self.estimator.params().items()},
        }

    def clone(self) -> "TableClassifier":
        """Fresh, unfitted copy (same estimator hyper-parameters)."""
        return TableClassifier(
            self.estimator.clone(),
            include_sensitive=self.include_sensitive,
            columns=self.columns,
            positive_label=self.positive_label,
            threshold=self.threshold,
        )
