"""Probability calibration: reliability curves, ECE, Platt scaling.

Calibration sits on the fault line between the accuracy and fairness
pillars: a score can be perfectly calibrated overall yet mis-calibrated
within protected groups (and, with unequal base rates, calibration and
error-rate parity are mutually exclusive — see the recidivism experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synth.base import sigmoid
from repro.exceptions import DataError, NotFittedError
from repro.learn.metrics import _check_pair


@dataclass(frozen=True)
class ReliabilityCurve:
    """Binned predicted-vs-observed frequencies."""

    bin_centers: np.ndarray
    predicted_mean: np.ndarray
    observed_rate: np.ndarray
    bin_counts: np.ndarray

    @property
    def expected_calibration_error(self) -> float:
        """Count-weighted mean |predicted − observed| over non-empty bins."""
        total = self.bin_counts.sum()
        if total == 0:
            return 0.0
        gaps = np.abs(self.predicted_mean - self.observed_rate)
        return float(np.sum(self.bin_counts * gaps) / total)

    @property
    def maximum_calibration_error(self) -> float:
        """Worst-bin |predicted − observed|."""
        occupied = self.bin_counts > 0
        if not occupied.any():
            return 0.0
        gaps = np.abs(self.predicted_mean - self.observed_rate)
        return float(gaps[occupied].max())


def reliability_curve(y_true, probabilities, n_bins: int = 10) -> ReliabilityCurve:
    """Bin probabilities into equal-width bins and compare with outcomes."""
    if n_bins < 2:
        raise DataError("need at least 2 bins")
    y_true, probabilities = _check_pair(y_true, probabilities)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    bin_index = np.clip(np.digitize(probabilities, edges[1:-1]), 0, n_bins - 1)
    predicted = np.zeros(n_bins)
    observed = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    for b in range(n_bins):
        mask = bin_index == b
        counts[b] = mask.sum()
        if counts[b]:
            predicted[b] = probabilities[mask].mean()
            observed[b] = y_true[mask].mean()
    return ReliabilityCurve(centers, predicted, observed, counts)


def expected_calibration_error(y_true, probabilities, n_bins: int = 10) -> float:
    """Shorthand for the ECE of :func:`reliability_curve`."""
    return reliability_curve(y_true, probabilities, n_bins).expected_calibration_error


class CalibratedClassifier:
    """Any classifier + a recalibration map fitted on held-out data.

    ``method`` is ``"platt"`` (sigmoid) or ``"isotonic"`` (monotone step
    function).  The wrapped model must already be fitted; ``calibrate``
    consumes data the model never trained on — recalibrating on training
    data just memorises its own overconfidence.
    """

    def __init__(self, model, method: str = "platt"):
        if method not in ("platt", "isotonic"):
            raise DataError("method must be 'platt' or 'isotonic'")
        self.model = model
        self.method = method
        self._map = None

    def calibrate(self, X_cal, y_cal) -> "CalibratedClassifier":
        """Fit the recalibration map on held-out (X, y)."""
        scores = self.model.predict_proba(X_cal)
        if self.method == "platt":
            self._map = PlattScaler().fit(scores, y_cal)
        else:
            from repro.learn.isotonic import IsotonicCalibrator

            self._map = IsotonicCalibrator().fit(scores, y_cal)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Recalibrated probabilities."""
        if self._map is None:
            raise NotFittedError("calibrate() must run before predict_proba()")
        return np.asarray(self._map.transform(self.model.predict_proba(X)))

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        """Hard decisions on the recalibrated probabilities."""
        return (self.predict_proba(X) >= threshold).astype(np.float64)


class PlattScaler:
    """Sigmoid recalibration: fit a, b so sigmoid(a·s + b) matches outcomes.

    Fitted on held-out data by damped Newton iterations on the 2-parameter
    log-loss.
    """

    def __init__(self, max_iter: int = 100, tol: float = 1e-8):
        self.max_iter = max_iter
        self.tol = tol
        self._a: float | None = None
        self._b: float = 0.0

    def fit(self, scores, y_true) -> "PlattScaler":
        """Fit the two-parameter sigmoid map."""
        y_true, scores = _check_pair(y_true, scores)
        a, b = 1.0, 0.0
        for _ in range(self.max_iter):
            z = a * scores + b
            p = np.asarray(sigmoid(z))
            gradient = np.array([
                np.sum((p - y_true) * scores),
                np.sum(p - y_true),
            ])
            curvature = p * (1.0 - p)
            hessian = np.array([
                [np.sum(curvature * scores**2) + 1e-9, np.sum(curvature * scores)],
                [np.sum(curvature * scores), np.sum(curvature) + 1e-9],
            ])
            step = np.linalg.solve(hessian, gradient)
            a -= step[0]
            b -= step[1]
            if np.abs(step).max() < self.tol:
                break
        self._a, self._b = float(a), float(b)
        return self

    def transform(self, scores) -> np.ndarray:
        """Apply the fitted sigmoid map to new scores."""
        if self._a is None:
            raise NotFittedError("PlattScaler must be fit before transform")
        scores = np.asarray(scores, dtype=np.float64)
        return np.asarray(sigmoid(self._a * scores + self._b))
