"""Gaussian naive Bayes.

Cheap, calibrationally imperfect, and fully inspectable: its per-feature
class-conditional means make it a useful contrast model in the
transparency experiments, and its speed makes it the default inner model
in Monte-Carlo-heavy audits.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import (
    Classifier,
    check_binary_labels,
    check_matrix,
    check_weights,
)


class GaussianNaiveBayes(Classifier):
    """Binary naive Bayes with Gaussian class-conditional features."""

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing
        self.class_prior_: np.ndarray | None = None
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None

    def fit(self, X, y, sample_weight=None) -> "GaussianNaiveBayes":
        """Estimate weighted per-class feature means and variances."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if len(X) != len(y):
            raise DataError(f"X has {len(X)} rows but y has {len(y)}")
        weights = check_weights(sample_weight, len(y))
        means = np.zeros((2, X.shape[1]))
        variances = np.zeros((2, X.shape[1]))
        priors = np.zeros(2)
        for label in (0, 1):
            mask = y == float(label)
            if not mask.any():
                raise DataError(f"class {label} absent from training data")
            w = weights[mask]
            total = w.sum()
            priors[label] = total
            means[label] = np.average(X[mask], axis=0, weights=w)
            centred = X[mask] - means[label]
            variances[label] = np.average(centred**2, axis=0, weights=w)
        priors /= priors.sum()
        max_var = variances.max()
        variances += self.var_smoothing * max(max_var, 1.0)
        self.class_prior_ = priors
        self.means_ = means
        self.variances_ = variances
        self._mark_fitted()
        return self

    def _log_likelihood(self, X: np.ndarray, label: int) -> np.ndarray:
        mean = self.means_[label]
        var = self.variances_[label]
        return -0.5 * np.sum(
            np.log(2.0 * np.pi * var) + (X - mean) ** 2 / var, axis=1
        )

    def predict_proba(self, X) -> np.ndarray:
        """Posterior P(y = 1 | x) from the Gaussian likelihoods."""
        self._require_fitted()
        X = check_matrix(X)
        log_joint = np.column_stack([
            np.log(self.class_prior_[0]) + self._log_likelihood(X, 0),
            np.log(self.class_prior_[1]) + self._log_likelihood(X, 1),
        ])
        log_joint -= log_joint.max(axis=1, keepdims=True)
        joint = np.exp(log_joint)
        return joint[:, 1] / joint.sum(axis=1)
