"""From-scratch learning library: models, metrics, calibration, selection."""

from repro.learn.base import BaseEstimator, Classifier, Regressor
from repro.learn.calibration import (
    CalibratedClassifier,
    PlattScaler,
    ReliabilityCurve,
    expected_calibration_error,
    reliability_curve,
)
from repro.learn.forest import RandomForestClassifier
from repro.learn.linear import LogisticRegression, RidgeRegression
from repro.learn.metrics import (
    ConfusionMatrix,
    accuracy,
    brier_score,
    confusion_matrix,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision,
    recall,
    roc_auc,
    roc_curve,
)
from repro.learn.mlp import MLPClassifier
from repro.learn.model_selection import (
    CVResult,
    GridSearchResult,
    cross_val_score,
    grid_search,
)
from repro.learn.naive_bayes import GaussianNaiveBayes
from repro.learn.neighbors import (
    KNeighborsClassifier,
    nearest_indices,
    pairwise_distances,
)
from repro.learn.preprocessing import FeatureEncoder, StandardScaler, encode_labels
from repro.learn.table_model import TableClassifier
from repro.learn.tree import DecisionTreeClassifier
from repro.learn.boosting import GradientBoostingClassifier
from repro.learn.isotonic import IsotonicCalibrator, pool_adjacent_violators

__all__ = [
    "CalibratedClassifier",
    "pool_adjacent_violators",
    "IsotonicCalibrator",
    "GradientBoostingClassifier",
    "BaseEstimator",
    "CVResult",
    "Classifier",
    "ConfusionMatrix",
    "DecisionTreeClassifier",
    "FeatureEncoder",
    "GaussianNaiveBayes",
    "GridSearchResult",
    "KNeighborsClassifier",
    "LogisticRegression",
    "MLPClassifier",
    "PlattScaler",
    "RandomForestClassifier",
    "Regressor",
    "ReliabilityCurve",
    "RidgeRegression",
    "StandardScaler",
    "TableClassifier",
    "accuracy",
    "brier_score",
    "confusion_matrix",
    "cross_val_score",
    "encode_labels",
    "expected_calibration_error",
    "f1_score",
    "grid_search",
    "log_loss",
    "mean_absolute_error",
    "mean_squared_error",
    "nearest_indices",
    "pairwise_distances",
    "precision",
    "recall",
    "reliability_curve",
    "roc_auc",
    "roc_curve",
]
