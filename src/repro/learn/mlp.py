"""A small multi-layer perceptron — the paper's "black box".

§2-Q4: "the neural networks used by the deep learning approach cannot be
understood by humans … they serve as a black box that apparently makes
good decisions, but cannot rationalize them."  This MLP is the minimal
instance of that object: accurate on the non-linear census task, opaque
by construction, and therefore the subject of every explainer in
:mod:`repro.transparency`.

Training: mini-batch Adam on the weighted cross-entropy, ReLU hidden
layers, Glorot initialisation.

Hot-path design (see docs/api.md, "Hot kernels & fusion"): all weights
and biases live in one contiguous parameter vector, with the per-layer
matrices exposed as reshaped views.  Gradients are written straight into
a matching flat vector (``np.matmul(..., out=...)``), so the Adam update
is a dozen whole-vector in-place ufuncs per step instead of two small
allocating updates per layer.  Each epoch gathers the shuffled training
set once so mini-batches are contiguous slices.  The fused step computes
the same IEEE operations in the same order as the historical per-layer
loop — fitted parameters are byte-identical (pinned by the golden
tests).
"""

from __future__ import annotations

import numpy as np

from repro.data.synth.base import sigmoid
from repro.exceptions import DataError
from repro.learn.base import (
    Classifier,
    check_binary_labels,
    check_matrix,
    check_weights,
)


class MLPClassifier(Classifier):
    """Fully-connected binary classifier.

    Parameters
    ----------
    hidden:
        Hidden layer widths, e.g. ``(32, 16)``.
    learning_rate, epochs, batch_size:
        Adam optimiser settings.
    l2:
        Weight decay strength.
    seed:
        Seeds initialisation and batch shuffling.
    """

    def __init__(self, hidden: tuple[int, ...] = (32, 16),
                 learning_rate: float = 0.01, epochs: int = 60,
                 batch_size: int = 64, l2: float = 1e-4, seed: int = 0):
        if not hidden or any(width < 1 for width in hidden):
            raise DataError("hidden must be a non-empty tuple of positive widths")
        self.hidden = tuple(hidden)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []

    def _initialise(self, n_features: int, rng: np.random.Generator) -> None:
        sizes = [n_features, *self.hidden, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, (fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        activations = [X]
        out = X
        for layer, (W, b) in enumerate(zip(self._weights, self._biases)):
            out = out @ W + b
            if layer < len(self._weights) - 1:
                out = np.maximum(out, 0.0)
            activations.append(out)
        return activations, np.asarray(sigmoid(out[:, 0]))

    def fit(self, X, y, sample_weight=None) -> "MLPClassifier":
        """Mini-batch Adam on weighted cross-entropy."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if len(X) != len(y):
            raise DataError(f"X has {len(X)} rows but y has {len(y)}")
        weights = check_weights(sample_weight, len(y))
        weights = weights / weights.mean()
        rng = np.random.default_rng(self.seed)
        self._initialise(X.shape[1], rng)

        # Flatten all parameters into one contiguous vector; the layer
        # matrices become reshaped views so _forward/_backward see them
        # unchanged while Adam updates the whole vector at once.
        spans: list[tuple[slice, slice, tuple[int, int]]] = []
        offset = 0
        for W, b in zip(self._weights, self._biases):
            w_span = slice(offset, offset + W.size)
            offset += W.size
            b_span = slice(offset, offset + b.size)
            offset += b.size
            spans.append((w_span, b_span, W.shape))
        theta = np.empty(offset)
        for (w_span, b_span, _), W, b in zip(spans, self._weights,
                                             self._biases):
            theta[w_span] = W.ravel()
            theta[b_span] = b
        self._weights = [theta[w].reshape(shape) for w, _, shape in spans]
        self._biases = [theta[b] for _, b, _ in spans]
        n_layers = len(self._weights)

        grad = np.zeros_like(theta)
        grad_w = [grad[w].reshape(shape) for w, _, shape in spans]
        grad_b = [grad[b] for _, b, _ in spans]
        m = np.zeros_like(theta)
        v = np.zeros_like(theta)
        scratch = np.empty_like(theta)   # (1-β)·g and √v̂ + ε
        update = np.empty_like(theta)    # m̂, then the final step
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        for _ in range(self.epochs):
            order = rng.permutation(len(X))
            # One gather per epoch: batches become contiguous slices.
            X_shuffled, y_shuffled = X[order], y[order]
            w_shuffled = weights[order]
            for start in range(0, len(X), self.batch_size):
                stop = min(start + self.batch_size, len(X))
                step += 1
                Xb = X_shuffled[start:stop]
                yb = y_shuffled[start:stop]
                wb = w_shuffled[start:stop]
                activations, probabilities = self._forward(Xb)
                # dL/dz for sigmoid + cross-entropy, per-sample weighted.
                delta = (wb * (probabilities - yb) / (stop - start))[:, None]
                for layer in reversed(range(n_layers)):
                    np.matmul(activations[layer].T, delta, out=grad_w[layer])
                    grad_w[layer] += self.l2 * self._weights[layer]
                    delta.sum(axis=0, out=grad_b[layer])
                    if layer > 0:
                        delta = delta @ self._weights[layer].T
                        delta *= activations[layer] > 0.0
                # Fused Adam: whole-vector in-place ops, float-for-float
                # the per-layer m/v/m̂/v̂ recurrence.
                m *= beta1
                np.multiply(grad, 1 - beta1, out=scratch)
                m += scratch
                np.multiply(grad, grad, out=scratch)
                scratch *= 1 - beta2
                v *= beta2
                v += scratch
                np.divide(m, 1 - beta1**step, out=update)      # m̂
                np.divide(v, 1 - beta2**step, out=scratch)     # v̂
                np.sqrt(scratch, out=scratch)
                scratch += eps
                update *= self.learning_rate
                update /= scratch
                theta -= update
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Forward pass probabilities."""
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self._weights[0].shape[0]:
            raise DataError(
                f"expected {self._weights[0].shape[0]} features, got {X.shape[1]}"
            )
        return self._forward(X)[1]

    @property
    def n_parameters(self) -> int:
        """Total trainable parameter count (opacity proxy for E9)."""
        self._require_fitted()
        return int(
            sum(W.size for W in self._weights) + sum(b.size for b in self._biases)
        )
