"""A small multi-layer perceptron — the paper's "black box".

§2-Q4: "the neural networks used by the deep learning approach cannot be
understood by humans … they serve as a black box that apparently makes
good decisions, but cannot rationalize them."  This MLP is the minimal
instance of that object: accurate on the non-linear census task, opaque
by construction, and therefore the subject of every explainer in
:mod:`repro.transparency`.

Training: mini-batch Adam on the weighted cross-entropy, ReLU hidden
layers, Glorot initialisation.
"""

from __future__ import annotations

import numpy as np

from repro.data.synth.base import sigmoid
from repro.exceptions import DataError
from repro.learn.base import (
    Classifier,
    check_binary_labels,
    check_matrix,
    check_weights,
)


class MLPClassifier(Classifier):
    """Fully-connected binary classifier.

    Parameters
    ----------
    hidden:
        Hidden layer widths, e.g. ``(32, 16)``.
    learning_rate, epochs, batch_size:
        Adam optimiser settings.
    l2:
        Weight decay strength.
    seed:
        Seeds initialisation and batch shuffling.
    """

    def __init__(self, hidden: tuple[int, ...] = (32, 16),
                 learning_rate: float = 0.01, epochs: int = 60,
                 batch_size: int = 64, l2: float = 1e-4, seed: int = 0):
        if not hidden or any(width < 1 for width in hidden):
            raise DataError("hidden must be a non-empty tuple of positive widths")
        self.hidden = tuple(hidden)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []

    def _initialise(self, n_features: int, rng: np.random.Generator) -> None:
        sizes = [n_features, *self.hidden, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, (fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        activations = [X]
        out = X
        for layer, (W, b) in enumerate(zip(self._weights, self._biases)):
            out = out @ W + b
            if layer < len(self._weights) - 1:
                out = np.maximum(out, 0.0)
            activations.append(out)
        return activations, np.asarray(sigmoid(out[:, 0]))

    def fit(self, X, y, sample_weight=None) -> "MLPClassifier":
        """Mini-batch Adam on weighted cross-entropy."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if len(X) != len(y):
            raise DataError(f"X has {len(X)} rows but y has {len(y)}")
        weights = check_weights(sample_weight, len(y))
        weights = weights / weights.mean()
        rng = np.random.default_rng(self.seed)
        self._initialise(X.shape[1], rng)

        m_w = [np.zeros_like(W) for W in self._weights]
        v_w = [np.zeros_like(W) for W in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        for _ in range(self.epochs):
            order = rng.permutation(len(X))
            for start in range(0, len(X), self.batch_size):
                batch = order[start:start + self.batch_size]
                if len(batch) == 0:
                    continue
                step += 1
                Xb, yb, wb = X[batch], y[batch], weights[batch]
                activations, probabilities = self._forward(Xb)
                # dL/dz for sigmoid + cross-entropy, per-sample weighted.
                delta = (wb * (probabilities - yb) / len(batch))[:, None]
                grads_w: list[np.ndarray] = [None] * len(self._weights)
                grads_b: list[np.ndarray] = [None] * len(self._weights)
                for layer in reversed(range(len(self._weights))):
                    grads_w[layer] = (
                        activations[layer].T @ delta + self.l2 * self._weights[layer]
                    )
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = delta @ self._weights[layer].T
                        delta *= activations[layer] > 0.0
                for layer in range(len(self._weights)):
                    for params, grads, m, v in (
                        (self._weights, grads_w, m_w, v_w),
                        (self._biases, grads_b, m_b, v_b),
                    ):
                        m[layer] = beta1 * m[layer] + (1 - beta1) * grads[layer]
                        v[layer] = beta2 * v[layer] + (1 - beta2) * grads[layer] ** 2
                        m_hat = m[layer] / (1 - beta1**step)
                        v_hat = v[layer] / (1 - beta2**step)
                        params[layer] -= (
                            self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
                        )
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Forward pass probabilities."""
        self._require_fitted()
        X = check_matrix(X)
        if X.shape[1] != self._weights[0].shape[0]:
            raise DataError(
                f"expected {self._weights[0].shape[0]} features, got {X.shape[1]}"
            )
        return self._forward(X)[1]

    @property
    def n_parameters(self) -> int:
        """Total trainable parameter count (opacity proxy for E9)."""
        self._require_fitted()
        return int(
            sum(W.size for W in self._weights) + sum(b.size for b in self._biases)
        )
