"""Row-range partitioned tables: the out-of-core dataset substrate.

A :class:`PartitionedTable` is an ordered list of row-range shards of
one logical table.  Each shard is either a materialized
:class:`~repro.data.table.Table` or a zero-argument *source* callable
producing one on demand — the latter is what makes datasets larger than
memory workable: the coordinator never has to hold more than one shard
(plus combined partial statistics) at a time, and process map tasks
(see :mod:`repro.engine.sharding`) load their own shard inside the
worker.

Identity is compositional: every shard has its own content fingerprint
(:func:`~repro.store.table_fingerprint`), and the dataset fingerprint
hashes the schema signature plus the ordered shard fingerprints — so
editing one shard changes exactly that shard's fingerprint (and the
dataset's), which is what lets an incremental sharded re-audit recompute
only the touched shard.  ``partition`` / ``concat`` round-trip exactly:
``PartitionedTable.partition(t, n).concat()`` carries byte-identical
column content to ``t``.

The module also ships the small mergeable-summary vocabulary the
sharded combine steps build on:

* :func:`merge_counts` — contingency-style integer counts merge
  *exactly* (integer addition is associative);
* :class:`MergeableMoments` — (n, Σx, Σx²) accumulators merged in shard
  order: deterministic at any shard count, and exact whenever the
  summed values are integers or 0/1 indicators (every count-derived
  statistic in the FACT audit);
* :class:`MergeableQuantiles` — the documented mergeable-summary path
  for quantile-based checks: shards contribute their sorted values,
  merges preserve the full multiset, so any quantile of the merged
  summary is **byte-identical** to ``np.quantile`` over the unsharded
  column (pinned by golden tests at several shard counts).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.exceptions import DataError, SchemaError


def _signature(schema) -> list[tuple]:
    return [(spec.name, spec.ctype, spec.role) for spec in schema]


class PartitionedTable:
    """An ordered list of row-range shards of one logical table.

    Parameters
    ----------
    shards:
        Tables, or zero-argument callables returning a table (lazy
        sources for out-of-core datasets).  At least one is required.
    schema:
        The shared schema.  Optional when any shard is already a
        materialized table (its schema is adopted); required when every
        shard is lazy.
    shard_rows:
        Optional per-shard row counts, letting ``n_rows`` answer
        without loading lazy shards.

    Every shard must carry an identical schema *signature* (column
    names, types, and FACT roles) — materialized shards are validated
    at construction, lazy ones on first load.
    """

    def __init__(self, shards: Sequence[Table | Callable[[], Table]],
                 schema=None,
                 shard_rows: Sequence[int] | None = None):
        shards = tuple(shards)
        if not shards:
            raise DataError("a PartitionedTable needs at least one shard")
        for shard in shards:
            if not isinstance(shard, Table) and not callable(shard):
                raise DataError(
                    "shards must be Tables or zero-argument callables, "
                    f"got {type(shard).__name__}"
                )
        if schema is None:
            for shard in shards:
                if isinstance(shard, Table):
                    schema = shard.schema
                    break
            else:
                raise SchemaError(
                    "every shard is lazy; pass the shared schema explicitly"
                )
        self._shards = shards
        self._schema = schema
        self._sig = _signature(schema)
        self._rows: list[int | None] = (
            [int(n) for n in shard_rows] if shard_rows is not None
            else [None] * len(shards)
        )
        if len(self._rows) != len(shards):
            raise DataError(
                f"shard_rows has {len(self._rows)} entries for "
                f"{len(shards)} shards"
            )
        self._fps: list[str | None] = [None] * len(shards)
        for index, shard in enumerate(shards):
            if isinstance(shard, Table):
                self._validate(index, shard)
                self._rows[index] = shard.n_rows

    # -- construction --------------------------------------------------------

    @classmethod
    def partition(cls, table: Table, n_shards: int | None = None,
                  max_rows: int | None = None) -> "PartitionedTable":
        """Split ``table`` into contiguous row-range shards.

        Exactly one of ``n_shards`` (that many near-equal shards, the
        first ``n_rows % n_shards`` one row larger) or ``max_rows``
        (ceil(n/max) shards of at most ``max_rows`` rows) must be
        given.  Shards are zero-copy row-range views of the table's
        columns; ``concat()`` restores byte-identical content.
        """
        if (n_shards is None) == (max_rows is None):
            raise DataError("give exactly one of n_shards or max_rows")
        n = table.n_rows
        if n_shards is not None:
            n_shards = int(n_shards)
            if not 1 <= n_shards <= max(n, 1):
                raise DataError(
                    f"n_shards must be in [1, {max(n, 1)}], got {n_shards}"
                )
            base, remainder = divmod(n, n_shards)
            sizes = [base + (1 if i < remainder else 0)
                     for i in range(n_shards)]
        else:
            max_rows = int(max_rows)
            if max_rows < 1:
                raise DataError(f"max_rows must be >= 1, got {max_rows}")
            sizes = [max_rows] * (n // max_rows)
            if n % max_rows or not sizes:
                sizes.append(n % max_rows if n else 0)
        shards = []
        start = 0
        for size in sizes:
            shards.append(table.slice(start, start + size))
            start += size
        return cls(shards, schema=table.schema)

    @classmethod
    def from_sources(cls, sources: Sequence[Callable[[], Table]], schema, *,
                     shard_rows: Sequence[int] | None = None,
                     ) -> "PartitionedTable":
        """A fully lazy partitioned table (the out-of-core entry point).

        Each source is loaded on demand and must return a table with the
        declared ``schema`` signature.  Sources should be *pure*: loads
        must return identical content every time, or fingerprints (and
        cache keys derived from them) are meaningless.  For process-
        backend map tasks, sources must also be picklable — module-level
        functions and :func:`functools.partial` of them qualify.
        """
        return cls(tuple(sources), schema=schema, shard_rows=shard_rows)

    # -- shard access --------------------------------------------------------

    @property
    def schema(self):
        """The schema every shard shares."""
        return self._schema

    @property
    def n_shards(self) -> int:
        """How many row-range shards the dataset holds."""
        return len(self._shards)

    @property
    def n_rows(self) -> int:
        """Total rows across shards (loads lazy shards once to count)."""
        total = 0
        for index in range(self.n_shards):
            rows = self._rows[index]
            if rows is None:
                self.shard(index)  # load once; records the count
                rows = self._rows[index]
            total += rows
        return total

    def shard_n_rows(self, index: int) -> int:
        """Row count of one shard (loads a lazy shard once to count)."""
        if self._rows[index] is None:
            self.shard(index)
        return self._rows[index]

    def shard_source(self, index: int) -> Table | Callable[[], Table]:
        """The raw shard: a table, or the lazy zero-argument loader.

        What a process map task closes over — the loader travels to the
        worker and materializes there, so the coordinator never touches
        the rows (see :func:`repro.engine.sharding.shard_map_nodes`).
        """
        return self._shards[index]

    def shard(self, index: int) -> Table:
        """Materialize shard ``index`` (validated against the schema).

        Lazy shards are loaded on every call — deliberately: caching
        materialized tables here would defeat the out-of-core memory
        bound.  Only metadata (row count, fingerprint) is remembered.
        """
        source = self._shards[index]
        table = source if isinstance(source, Table) else source()
        if not isinstance(table, Table):
            raise DataError(
                f"shard source {index} returned a "
                f"{type(table).__name__}, not a Table"
            )
        self._validate(index, table)
        self._rows[index] = table.n_rows
        return table

    def shards(self) -> Iterator[Table]:
        """Iterate the shards in order (one materialized at a time)."""
        for index in range(self.n_shards):
            yield self.shard(index)

    def concat(self) -> Table:
        """The whole logical table, materialized.

        Round-trips exactly: ``partition(t, n).concat()`` carries
        byte-identical column content (and hence the same
        ``table_fingerprint``) as ``t``.
        """
        return Table.concat(self.shards())

    def replaced(self, index: int, shard: Table | Callable[[], Table],
                 n_rows: int | None = None) -> "PartitionedTable":
        """A new dataset with shard ``index`` swapped out.

        The edited shard gets a fresh fingerprint; every other shard
        keeps its cached one — the incremental re-audit primitive.
        """
        if not 0 <= index < self.n_shards:
            raise DataError(
                f"shard index {index} out of range [0, {self.n_shards})"
            )
        shards = list(self._shards)
        shards[index] = shard
        replacement = PartitionedTable.__new__(PartitionedTable)
        replacement._shards = tuple(shards)
        replacement._schema = self._schema
        replacement._sig = self._sig
        replacement._rows = list(self._rows)
        replacement._rows[index] = n_rows
        replacement._fps = list(self._fps)
        replacement._fps[index] = None
        if isinstance(shard, Table):
            replacement._validate(index, shard)
            replacement._rows[index] = shard.n_rows
        return replacement

    # -- identity ------------------------------------------------------------

    def shard_fingerprints(self) -> tuple[str, ...]:
        """Per-shard content fingerprints, in shard order.

        Computed lazily (a lazy shard is loaded once, hashed, and
        released) and cached — the store/engine only ask when a cache
        key is actually needed.
        """
        from repro.store.fingerprint import table_fingerprint

        for index in range(self.n_shards):
            if self._fps[index] is None:
                self._fps[index] = table_fingerprint(self.shard(index))
        return tuple(self._fps)

    def shard_fingerprint(self, index: int) -> str:
        """The content fingerprint of one shard."""
        from repro.store.fingerprint import table_fingerprint

        if self._fps[index] is None:
            self._fps[index] = table_fingerprint(self.shard(index))
        return self._fps[index]

    def __content_fingerprint__(self) -> str:
        """Dataset fingerprint: schema signature + ordered shard prints.

        Composes per-shard content hashes, so the dataset identity is a
        pure function of (schema, shard contents, shard order) — the
        partition *layout* is part of the identity, which is what keys
        shard-level cache entries correctly.
        """
        from repro.store.fingerprint import fingerprint

        return fingerprint(
            kind="partitioned_table",
            schema=[(name, ctype.value, role.value)
                    for name, ctype, role in self._sig],
            shards=list(self.shard_fingerprints()),
        )

    # -- internals -----------------------------------------------------------

    def _validate(self, index: int, table: Table) -> None:
        if _signature(table.schema) != self._sig:
            raise SchemaError(
                f"shard {index} disagrees with the partition schema "
                f"(names, types, and FACT roles must all match): "
                f"{table.schema.names} vs {self._schema.names}"
            )
        known = self._rows[index]
        if known is not None and table.n_rows != known:
            raise DataError(
                f"shard {index} loaded {table.n_rows} rows, "
                f"declared {known}"
            )

    def __repr__(self) -> str:
        rows = sum(r for r in self._rows if r is not None)
        counted = all(r is not None for r in self._rows)
        return (f"PartitionedTable({self.n_shards} shards, "
                f"{rows if counted else f'>={rows}'} rows, "
                f"columns={self._schema.names})")


def partition(table: Table, n_shards: int | None = None,
              max_rows: int | None = None) -> PartitionedTable:
    """Module-level alias of :meth:`PartitionedTable.partition`."""
    return PartitionedTable.partition(table, n_shards=n_shards,
                                      max_rows=max_rows)


# -- mergeable summaries ------------------------------------------------------


def merge_counts(mappings) -> dict:
    """Sum contingency-style integer count mappings — an *exact* merge.

    The merged dict iterates in first-seen key order (shard order), but
    every statistic derived from class counts in this codebase (min,
    integer sums, exact integer means) is order-insensitive, so shard
    order never reaches the results.
    """
    merged: dict = {}
    for mapping in mappings:
        for key, count in mapping.items():
            merged[key] = merged.get(key, 0) + int(count)
    return merged


@dataclass(frozen=True)
class MergeableMoments:
    """(n, Σx, Σx²) accumulator with an order-fixed merge.

    Merging in shard order is deterministic at every shard count and
    *exact* whenever the summed values are integers or 0/1 indicators
    below 2**53 (counts, selection indicators, contingency-derived
    sums — the statistics the sharded audit actually folds).  For
    general floats the merge is deterministic but need not be bit-equal
    to a monolithic ``np.mean``; checks that require bit-equality to
    the serial path concatenate values instead (see
    :class:`MergeableQuantiles` and :mod:`repro.engine.sharding`).
    """

    n: int
    total: float
    total_sq: float

    @classmethod
    def of(cls, values) -> "MergeableMoments":
        """The moments of one shard's values."""
        array = np.asarray(values, dtype=np.float64)
        return cls(n=int(array.size), total=float(array.sum()),
                   total_sq=float(np.square(array).sum()))

    def merge(self, other: "MergeableMoments") -> "MergeableMoments":
        """This summary folded with the next shard's (in shard order)."""
        return MergeableMoments(
            n=self.n + other.n,
            total=self.total + other.total,
            total_sq=self.total_sq + other.total_sq,
        )

    @property
    def mean(self) -> float:
        """Σx / n (0.0 when empty)."""
        return self.total / self.n if self.n else 0.0

    @property
    def variance(self) -> float:
        """Population variance from the accumulated moments."""
        if not self.n:
            return 0.0
        mean = self.mean
        return max(self.total_sq / self.n - mean * mean, 0.0)


class MergeableQuantiles:
    """The mergeable-summary path for quantile-based checks.

    Keeps each shard's values sorted; merging concatenates and re-sorts,
    preserving the full multiset — so ``quantile(q)`` over the merged
    summary is **byte-identical** to ``np.quantile`` over the unsharded
    values, at any shard count and merge order.  This is the exact
    (store-everything) end of the mergeable-sketch spectrum: audits pin
    bit-equality to the serial path, so a lossy sketch is not an option
    here, and the narrow per-shard statistic columns it summarizes are
    small relative to the shards themselves.
    """

    def __init__(self, values=()):
        self._values = np.sort(np.asarray(values, dtype=np.float64))

    @classmethod
    def of(cls, values) -> "MergeableQuantiles":
        """The summary of one shard's values."""
        return cls(values)

    def merge(self, other: "MergeableQuantiles") -> "MergeableQuantiles":
        """The multiset union of the two summaries."""
        merged = MergeableQuantiles.__new__(MergeableQuantiles)
        merged._values = np.sort(
            np.concatenate([self._values, other._values])
        )
        return merged

    @property
    def n(self) -> int:
        """How many values the summary holds."""
        return int(self._values.size)

    def quantile(self, q) -> np.ndarray | np.float64:
        """``np.quantile`` of the full merged multiset."""
        if not self._values.size:
            raise DataError("quantile of an empty summary")
        return np.quantile(self._values, q)

    def values(self) -> np.ndarray:
        """The sorted merged values (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view
