"""Train/test/calibration splits and cross-validation folds.

All splitters take an explicit :class:`numpy.random.Generator` so every
experiment in the benchmark harness is exactly reproducible — the paper's
accuracy pillar starts with controlling one's own randomness.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.exceptions import DataError


def train_test_split(table: Table, test_fraction: float,
                     rng: np.random.Generator,
                     stratify_by: str | None = None) -> tuple[Table, Table]:
    """Split ``table`` into a train and a test table.

    With ``stratify_by`` the split preserves the marginal distribution of
    that column in both parts (important when auditing small protected
    groups: a plain split can leave a group absent from the test set).
    """
    if not 0.0 < test_fraction < 1.0:
        raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if table.n_rows < 2:
        raise DataError("need at least 2 rows to split")
    if stratify_by is None:
        indices = rng.permutation(table.n_rows)
        n_test = max(1, int(round(table.n_rows * test_fraction)))
        n_test = min(n_test, table.n_rows - 1)
        return table.take(indices[n_test:]), table.take(indices[:n_test])

    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for indices in table.group_indices(stratify_by).values():
        shuffled = rng.permutation(indices)
        n_test = int(round(len(shuffled) * test_fraction))
        test_parts.append(shuffled[:n_test])
        train_parts.append(shuffled[n_test:])
    train_idx = rng.permutation(np.concatenate(train_parts))
    test_idx = rng.permutation(np.concatenate(test_parts))
    if len(train_idx) == 0 or len(test_idx) == 0:
        raise DataError("stratified split produced an empty part")
    return table.take(train_idx), table.take(test_idx)


def three_way_split(table: Table, test_fraction: float,
                    calibration_fraction: float,
                    rng: np.random.Generator,
                    stratify_by: str | None = None,
                    ) -> tuple[Table, Table, Table]:
    """Split into (train, calibration, test).

    The calibration part feeds split-conformal prediction (experiment E4):
    accuracy guarantees require data the model never trained on.
    """
    if test_fraction + calibration_fraction >= 1.0:
        raise DataError("test + calibration fractions must leave room for training")
    rest, test = train_test_split(table, test_fraction, rng, stratify_by)
    relative = calibration_fraction / (1.0 - test_fraction)
    train, calibration = train_test_split(rest, relative, rng, stratify_by)
    return train, calibration, test


def k_fold_indices(n_rows: int, n_folds: int,
                   rng: np.random.Generator) -> list[tuple[np.ndarray, np.ndarray]]:
    """Index pairs ``(train_idx, test_idx)`` for k-fold cross-validation."""
    if n_folds < 2:
        raise DataError(f"need at least 2 folds, got {n_folds}")
    if n_folds > n_rows:
        raise DataError(f"cannot make {n_folds} folds from {n_rows} rows")
    permutation = rng.permutation(n_rows)
    folds = np.array_split(permutation, n_folds)
    pairs = []
    for held_out in range(n_folds):
        test_idx = folds[held_out]
        train_idx = np.concatenate(
            [fold for index, fold in enumerate(folds) if index != held_out]
        )
        pairs.append((train_idx, test_idx))
    return pairs


def k_fold(table: Table, n_folds: int,
           rng: np.random.Generator) -> list[tuple[Table, Table]]:
    """K-fold cross-validation splits as (train, test) table pairs."""
    return [
        (table.take(train_idx), table.take(test_idx))
        for train_idx, test_idx in k_fold_indices(table.n_rows, n_folds, rng)
    ]


def bootstrap_indices(n_rows: int, n_resamples: int,
                      rng: np.random.Generator) -> list[np.ndarray]:
    """Index arrays for ``n_resamples`` bootstrap resamples of size ``n_rows``."""
    if n_rows == 0:
        raise DataError("cannot bootstrap an empty table")
    return [rng.integers(0, n_rows, size=n_rows) for _ in range(n_resamples)]
