"""A small column-oriented table.

The toolkit needs a dataset substrate that carries FACT metadata (see
:mod:`repro.data.schema`) alongside the values.  ``Table`` stores each
column as a numpy array — ``float64`` for numeric columns, ``object``
(strings) for categorical ones — and is immutable by convention: every
operation returns a new table sharing column arrays where possible.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.data.schema import (
    ColumnRole,
    ColumnSpec,
    ColumnType,
    Schema,
)
from repro.exceptions import DataError, SchemaError


def _coerce(values: Sequence | np.ndarray, ctype: ColumnType) -> np.ndarray:
    """Coerce raw values into the canonical storage array for ``ctype``."""
    if ctype is ColumnType.NUMERIC:
        array = np.asarray(values, dtype=np.float64)
    else:
        array = np.asarray(
            [value if isinstance(value, str) else str(value) for value in values],
            dtype=object,
        )
    if array.ndim != 1:
        raise DataError(f"columns must be 1-D, got shape {array.shape}")
    return array


def _infer_ctype(values: Sequence | np.ndarray) -> ColumnType:
    """Guess a column type from raw values: numbers → numeric, else categorical."""
    array = np.asarray(values)
    if array.dtype.kind in "ifub":
        return ColumnType.NUMERIC
    return ColumnType.CATEGORICAL


def _factorize(array: np.ndarray, ctype: ColumnType):
    """Factorize one canonical column into sorted-unique codes.

    Returns ``(uniques, codes, order, n_missing)``: ``uniques`` are the
    sorted distinct values (``<U`` strings for categorical columns so
    comparisons stay in C, float64 for numeric), ``codes`` index each
    row into them with missing keys (NaN / ``""``) forced to ``-1``, and
    ``order`` stably sorts the rows by code — the ``n_missing`` missing
    rows first.  NaNs are pinned to one bucket before ``np.unique`` so
    older numpy (per-NaN uniques) and newer numpy (collapsed NaNs)
    produce identical codes; the bucket is unreachable through the
    ``-1`` codes anyway.
    """
    if ctype is ColumnType.NUMERIC:
        missing = np.isnan(array)
        safe = np.where(missing, 0.0, array)
    else:
        safe = array.astype("U")
        missing = safe == ""
    uniques, codes = np.unique(safe, return_inverse=True)
    codes = codes.astype(np.int64)
    codes[missing] = -1
    order = np.argsort(codes, kind="stable")
    return uniques, codes, order, int(missing.sum())


class Table:
    """Immutable column-oriented table with a FACT-annotated schema."""

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]):
        if set(schema.names) != set(columns):
            raise SchemaError(
                "schema and data disagree: "
                f"schema={sorted(schema.names)} data={sorted(columns)}"
            )
        arrays = {}
        n_rows = None
        for spec in schema:
            array = _coerce(columns[spec.name], spec.ctype)
            if n_rows is None:
                n_rows = len(array)
            elif len(array) != n_rows:
                raise DataError(
                    f"column {spec.name!r} has {len(array)} rows, expected {n_rows}"
                )
            arrays[spec.name] = array
        self._schema = schema
        self._columns = arrays
        self._n_rows = 0 if n_rows is None else n_rows
        self._factor_cache: dict[str, tuple] = {}
        self._views: dict[str, np.ndarray] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def _from_canonical(cls, schema: Schema,
                        columns: Mapping[str, np.ndarray],
                        n_rows: int) -> "Table":
        """Build a table from arrays already in canonical storage form.

        Internal fast path for operations whose outputs are gathers,
        slices, or concatenations of an existing table's columns (or
        freshly computed float64 arrays): those are canonical by
        construction, so re-running the per-element coercion in
        ``__init__`` — the dominant cost of large joins — is skipped.
        The caller vouches for dtype, 1-D shape, and row count.
        """
        table = cls.__new__(cls)
        table._schema = schema
        table._columns = dict(columns)
        table._n_rows = n_rows
        table._factor_cache = {}
        table._views = {}
        return table

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence],
                  schema: Schema | None = None) -> "Table":
        """Build a table from ``{name: values}``, inferring types if needed."""
        if schema is None:
            schema = Schema(
                [ColumnSpec(name, _infer_ctype(values))
                 for name, values in data.items()]
            )
        return cls(schema, {name: np.asarray(values) for name, values in data.items()})

    @classmethod
    def empty_like(cls, other: "Table") -> "Table":
        """A zero-row table with the same schema as ``other``."""
        return cls(other.schema, {name: [] for name in other.schema.names})

    # -- basic properties ------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table's schema."""
        return self._schema

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self._schema)

    @property
    def column_names(self) -> list[str]:
        """Column names in schema order."""
        return self._schema.names

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names or self.n_rows != other.n_rows:
            return False
        for name in self.column_names:
            mine, theirs = self._columns[name], other._columns[name]
            if mine.dtype == object or theirs.dtype == object:
                if not np.array_equal(mine, theirs):
                    return False
            elif not np.allclose(mine, theirs, equal_nan=True):
                return False
        return True

    def __repr__(self) -> str:
        return f"Table({self.n_rows} rows x {self.n_columns} columns: {self.column_names})"

    # -- column access -----------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """The values of one column, as a read-only zero-copy view.

        Tables share column arrays freely across ``select``/``drop``/
        ``with_role``/``rename``, so the arrays handed out here are
        marked non-writeable — mutating one would silently corrupt every
        derived table (and any memoized plan artifact holding it).  Call
        ``np.array(...)`` on the result if you need a private mutable
        copy.
        """
        view = self._views.get(name)
        if view is None:
            if name not in self._columns:
                raise SchemaError(f"no column named {name!r}")
            view = self._columns[name].view()
            view.flags.writeable = False
            self._views[name] = view
        return view

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def columns(self, names: Iterable[str]) -> list[np.ndarray]:
        """The value arrays of several columns, in order."""
        return [self.column(name) for name in names]

    def _factorized(self, name: str) -> tuple:
        """Cached :func:`_factorize` of one column.

        Columns are immutable, so the factorization is computed once per
        table and reused — repeated joins and aggregations against the
        same table (star-schema dimension tables, benchmark repeats) pay
        the sort only on first touch.  The cache never serializes: the
        store codec and :func:`~repro.store.table_fingerprint` both work
        from schema + column arrays.
        """
        cached = self._factor_cache.get(name)
        if cached is None:
            cached = _factorize(self.column(name), self._schema[name].ctype)
            self._factor_cache[name] = cached
        return cached

    def __content_fingerprint__(self) -> str:
        """Content hash over schema + column bytes (see ``table_fingerprint``).

        Lets :func:`repro.store.object_fingerprint` hash a table nested
        inside another object by content — independent of incidental
        instance state such as the lazy factorization cache.
        """
        from repro.store.fingerprint import table_fingerprint

        return table_fingerprint(self)

    def row(self, index: int) -> dict[str, object]:
        """One row as a ``{column: value}`` dict."""
        if not 0 <= index < self._n_rows:
            raise DataError(f"row index {index} out of range [0, {self._n_rows})")
        return {name: self._columns[name][index] for name in self.column_names}

    def iter_rows(self) -> Iterable[dict[str, object]]:
        """Iterate over rows as dicts (slow path; prefer column ops)."""
        for index in range(self._n_rows):
            yield self.row(index)

    # -- structural transforms ----------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Table restricted to the given columns, in the given order."""
        schema = self._schema.select(list(names))
        return Table._from_canonical(
            schema, {name: self._columns[name] for name in names},
            self._n_rows,
        )

    def drop(self, names: Sequence[str]) -> "Table":
        """Table without the given columns."""
        schema = self._schema.drop(list(names))
        return Table._from_canonical(
            schema, {name: self._columns[name] for name in schema.names},
            self._n_rows,
        )

    def with_column(self, spec: ColumnSpec, values: Sequence) -> "Table":
        """Table with a column added or replaced."""
        array = _coerce(values, spec.ctype)
        if self.n_columns and len(array) != self._n_rows:
            raise DataError(
                f"new column {spec.name!r} has {len(array)} rows, expected {self._n_rows}"
            )
        schema = self._schema.with_column(spec)
        columns = dict(self._columns)
        columns[spec.name] = array
        return Table(schema, columns)

    def with_role(self, name: str, role: ColumnRole) -> "Table":
        """Table with one column's FACT role changed."""
        return Table._from_canonical(
            self._schema.with_role(name, role), self._columns, self._n_rows
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Table with columns renamed according to ``mapping``."""
        specs = []
        columns = {}
        for spec in self._schema:
            new_name = mapping.get(spec.name, spec.name)
            specs.append(ColumnSpec(new_name, spec.ctype, spec.role, spec.description))
            columns[new_name] = self._columns[spec.name]
        return Table._from_canonical(Schema(specs), columns, self._n_rows)

    # -- row transforms ---------------------------------------------------------

    def take(self, indices: Sequence[int] | np.ndarray) -> "Table":
        """Table containing the rows at ``indices`` (with repetition allowed)."""
        idx = np.asarray(indices, dtype=np.intp)
        return Table._from_canonical(
            self._schema,
            {name: array[idx] for name, array in self._columns.items()},
            len(idx),
        )

    def filter(self, mask: Sequence[bool] | np.ndarray) -> "Table":
        """Table containing the rows where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self._n_rows:
            raise DataError(
                f"mask has {len(mask)} entries, expected {self._n_rows}"
            )
        return Table._from_canonical(
            self._schema,
            {name: array[mask] for name, array in self._columns.items()},
            int(np.count_nonzero(mask)),
        )

    def slice(self, start: int, stop: int) -> "Table":
        """The contiguous row range ``[start, stop)``, zero-copy.

        Column arrays of the result are views into this table's arrays
        (contiguous slices never copy), which is what makes row-range
        partitioning (:mod:`repro.data.partition`) free: a thousand
        shards of a table cost a thousand array headers, not a second
        copy of the data.
        """
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= self._n_rows:
            raise DataError(
                f"slice [{start}, {stop}) out of range "
                f"[0, {self._n_rows})"
            )
        return Table._from_canonical(
            self._schema,
            {name: array[start:stop]
             for name, array in self._columns.items()},
            stop - start,
        )

    def head(self, n: int = 5) -> "Table":
        """The first ``n`` rows."""
        return self.take(np.arange(min(n, self._n_rows)))

    def shuffle(self, rng: np.random.Generator) -> "Table":
        """Rows in a random order drawn from ``rng``."""
        return self.take(rng.permutation(self._n_rows))

    def sample(self, n: int, rng: np.random.Generator,
               replace: bool = False) -> "Table":
        """A random sample of ``n`` rows."""
        if not replace and n > self._n_rows:
            raise DataError(f"cannot sample {n} rows from {self._n_rows} without replacement")
        return self.take(rng.choice(self._n_rows, size=n, replace=replace))

    def sort_by(self, names: str | Sequence[str],
                descending: bool = False) -> "Table":
        """Rows sorted by one or several columns (stable).

        ``names`` may be one column name or a sequence — the first name
        is the primary key.  Ties keep their original relative order in
        both directions (stable descending is *not* a reversed ascending
        sort, which would reverse tie order), so sorted output is a
        deterministic function of the input rows — the property the
        relational join kernels build on.
        """
        if isinstance(names, str):
            names = [names]
        if not names:
            raise SchemaError("sort_by needs at least one column")
        keys = [self.column(name) for name in names]
        if descending:
            # Stable descending: ascending-sort the reversed rows, map
            # positions back, reverse — equal keys keep input order.
            order_rev = np.lexsort([key[::-1] for key in reversed(keys)])
            order = (self._n_rows - 1 - order_rev)[::-1]
        else:
            order = np.lexsort(list(reversed(keys)))
        return self.take(order)

    @classmethod
    def concat(cls, tables: Iterable["Table"]) -> "Table":
        """One table holding the rows of ``tables``, in order.

        Every table must carry an identical schema (names, types, and
        FACT roles) — concatenating tables that merely share column
        names would silently merge different declarations.  Callable on
        an instance too (``table.concat([a, b])`` ignores the instance).

        ``tables`` may be any iterable, including a generator: each
        table is validated as it streams past and only its column
        arrays are retained, so shard-sized chunks produced on the fly
        (a :class:`~repro.data.partition.PartitionedTable`'s lazy
        shards, a chunked join) never require the source tables to be
        alive simultaneously.
        """
        reference = None
        signature = None
        parts: dict[str, list[np.ndarray]] = {}
        total = 0
        for table in tables:
            if not isinstance(table, Table):
                raise DataError(
                    f"concat expects Tables, got {type(table).__name__}"
                )
            if reference is None:
                reference = table.schema
                signature = [(s.name, s.ctype, s.role) for s in reference]
                parts = {name: [] for name in reference.names}
            elif [(s.name, s.ctype, s.role)
                  for s in table.schema] != signature:
                raise SchemaError(
                    "cannot concat tables with different schemas: "
                    f"{reference.names} (roles/types included) vs "
                    f"{table.schema.names}"
                )
            for name in reference.names:
                parts[name].append(table._columns[name])
            total += table._n_rows
        if reference is None:
            raise DataError("concat needs at least one table")
        columns = {
            name: np.concatenate(arrays) for name, arrays in parts.items()
        }
        return cls._from_canonical(reference, columns, total)

    # -- grouping / summaries ------------------------------------------------------

    def unique(self, name: str) -> np.ndarray:
        """Sorted unique values of one column."""
        return np.unique(self.column(name))

    def group_indices(self, name: str) -> dict[object, np.ndarray]:
        """Row indices of each distinct value of ``name``."""
        values = self.column(name)
        return {
            value: np.flatnonzero(values == value) for value in np.unique(values)
        }

    def group_by(self, name: str) -> dict[object, "Table"]:
        """Split the table into sub-tables per distinct value of ``name``."""
        return {
            value: self.take(indices)
            for value, indices in self.group_indices(name).items()
        }

    def value_counts(self, name: str) -> dict[object, int]:
        """Occurrence counts of each distinct value of ``name``."""
        values, counts = np.unique(self.column(name), return_counts=True)
        return dict(zip(values.tolist(), counts.tolist()))

    def describe(self) -> dict[str, dict[str, object]]:
        """Per-column summary used by datasheets and audit reports."""
        summary: dict[str, dict[str, object]] = {}
        for spec in self._schema:
            values = self._columns[spec.name]
            entry: dict[str, object] = {
                "type": spec.ctype.value,
                "role": spec.role.value,
                "n": int(self._n_rows),
            }
            if spec.ctype is ColumnType.NUMERIC and self._n_rows:
                entry.update(
                    mean=float(np.mean(values)),
                    std=float(np.std(values)),
                    min=float(np.min(values)),
                    max=float(np.max(values)),
                    missing=int(np.sum(np.isnan(values))),
                )
            elif self._n_rows:
                entry.update(
                    n_unique=int(len(np.unique(values))),
                    top=max(self.value_counts(spec.name).items(), key=lambda kv: kv[1])[0],
                )
            summary[spec.name] = entry
        return summary

    def to_dict(self) -> dict[str, list]:
        """Plain ``{name: list-of-values}`` copy of the data."""
        return {name: array.tolist() for name, array in self._columns.items()}

    # -- FACT-role conveniences -----------------------------------------------------

    @property
    def target_name(self) -> str | None:
        """Name of the declared target column, if any."""
        return self._schema.target_name

    def target(self) -> np.ndarray:
        """Values of the target column."""
        name = self.target_name
        if name is None:
            raise SchemaError("table declares no target column")
        return self.column(name)

    def feature_table(self, include_sensitive: bool = False) -> "Table":
        """The model-input view: FEATURE columns, optionally plus SENSITIVE.

        The default mirrors the paper's warning that omitting sensitive
        attributes does *not* guarantee fairness — models are trained
        without them, audits still see them via the full table.
        """
        names = list(self._schema.feature_names)
        if include_sensitive:
            names += self._schema.sensitive_names
        return self.select(names)

    def sensitive(self, name: str | None = None) -> np.ndarray:
        """Values of a sensitive column (the single one if unnamed)."""
        names = self._schema.sensitive_names
        if name is None:
            if len(names) != 1:
                raise SchemaError(
                    f"expected exactly one sensitive column, found {names}"
                )
            name = names[0]
        elif name not in names:
            raise SchemaError(f"{name!r} is not declared sensitive")
        return self.column(name)
