"""Missing-value imputation.

"Each step in the data science pipeline may create inaccuracies" — and
imputation is a step, so it is implemented as a fitted, provenance-able
transformation: statistics are learned on the training table and applied
unchanged to evaluation data (imputing test data with its own statistics
is a subtle leak).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnType
from repro.data.table import Table
from repro.exceptions import DataError, NotFittedError

MISSING_CATEGORY = ""


class SimpleImputer:
    """Mean (numeric) / mode (categorical) imputation with fitted state.

    Numeric missing values are NaN; categorical missing values are the
    empty string (what :func:`repro.data.io.read_csv` produces for empty
    cells in categorical columns).
    """

    def __init__(self, strategy: str = "mean"):
        if strategy not in ("mean", "median"):
            raise DataError("strategy must be 'mean' or 'median'")
        self.strategy = strategy
        self._fill: dict[str, object] = {}
        self._fitted = False

    def fit(self, table: Table) -> "SimpleImputer":
        """Learn one fill value per column from ``table``."""
        self._fill = {}
        for spec in table.schema:
            values = table.column(spec.name)
            if spec.ctype is ColumnType.NUMERIC:
                observed = values[~np.isnan(values)]
                if len(observed) == 0:
                    self._fill[spec.name] = 0.0
                elif self.strategy == "mean":
                    self._fill[spec.name] = float(observed.mean())
                else:
                    self._fill[spec.name] = float(np.median(observed))
            else:
                observed_mask = values != MISSING_CATEGORY
                if not observed_mask.any():
                    self._fill[spec.name] = "unknown"
                else:
                    levels, counts = np.unique(
                        values[observed_mask], return_counts=True
                    )
                    self._fill[spec.name] = levels[int(np.argmax(counts))]
        self._fitted = True
        return self

    def transform(self, table: Table) -> Table:
        """Fill missing entries with the learned statistics."""
        if not self._fitted:
            raise NotFittedError("SimpleImputer must be fit before transform")
        result = table
        for spec in table.schema:
            if spec.name not in self._fill:
                raise DataError(f"column {spec.name!r} unseen at fit time")
            values = table.column(spec.name)
            if spec.ctype is ColumnType.NUMERIC:
                mask = np.isnan(values)
            else:
                mask = values == MISSING_CATEGORY
            if not mask.any():
                continue
            filled = values.copy()
            filled[mask] = self._fill[spec.name]
            result = result.with_column(spec, filled)
        return result

    def fit_transform(self, table: Table) -> Table:
        """Fit then transform in one step."""
        return self.fit(table).transform(table)

    def missingness_report(self, table: Table) -> dict[str, float]:
        """Per-column missing fractions (for the datasheet)."""
        report = {}
        for spec in table.schema:
            values = table.column(spec.name)
            if spec.ctype is ColumnType.NUMERIC:
                report[spec.name] = float(np.mean(np.isnan(values)))
            else:
                report[spec.name] = float(np.mean(values == MISSING_CATEGORY))
        return report
