"""Simpson's-paradox generators.

§2-Q2: "a trend appears in different groups of data but disappears or
reverses when these groups are combined. It is frightening to see data
scientists nowadays who seem not to be aware of the many pitfalls."

Both generators construct the paradox with *known* stratum-level effects,
so the detector (:mod:`repro.accuracy.simpson`) can be tested against
ground truth rather than anecdotes.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnRole, Schema, categorical, numeric
from repro.data.synth.base import SyntheticGenerator, bernoulli
from repro.data.table import Table
from repro.exceptions import DataError


class AdmissionsGenerator(SyntheticGenerator):
    """Berkeley-style admissions: per-department rates favour group B,
    the aggregate favours group A.

    Group B applies disproportionately to competitive departments.  Within
    *every* department, B's acceptance probability exceeds A's by
    ``within_department_edge``; the aggregate nevertheless reverses
    because of the application mix.
    """

    name = "admissions"

    def __init__(self, n_departments: int = 4,
                 within_department_edge: float = 0.05,
                 selectivity_spread: float = 0.6):
        if n_departments < 2:
            raise DataError("need at least 2 departments")
        if not 0.0 <= within_department_edge <= 0.2:
            raise DataError("within_department_edge must be in [0, 0.2]")
        self.n_departments = n_departments
        self.within_department_edge = within_department_edge
        self.selectivity_spread = selectivity_spread

    def schema(self) -> Schema:
        """The generated table's schema."""
        return Schema([
            categorical("department"),
            categorical("group", role=ColumnRole.SENSITIVE),
            numeric("admitted", role=ColumnRole.TARGET),
        ])

    def department_rates(self) -> dict[str, tuple[float, float]]:
        """Per-department (rate_A, rate_B) acceptance probabilities."""
        rates = {}
        for index in range(self.n_departments):
            # Departments range from easy to hard.
            position = index / max(1, self.n_departments - 1)
            base = 0.75 - self.selectivity_spread * position
            rate_a = float(np.clip(base, 0.02, 0.95))
            rate_b = float(np.clip(base + self.within_department_edge, 0.02, 0.98))
            rates[f"dept_{index}"] = (rate_a, rate_b)
        return rates

    def application_mix(self) -> dict[str, tuple[float, float]]:
        """Per-department (p_A_applies, p_B_applies) application shares."""
        weights_a = np.linspace(2.0, 0.4, self.n_departments)
        weights_b = np.linspace(0.4, 2.0, self.n_departments)
        shares_a = weights_a / weights_a.sum()
        shares_b = weights_b / weights_b.sum()
        return {
            f"dept_{index}": (float(shares_a[index]), float(shares_b[index]))
            for index in range(self.n_departments)
        }

    def generate(self, n_rows: int, rng: np.random.Generator) -> Table:
        if n_rows <= 0:
            raise DataError("n_rows must be positive")
        rates = self.department_rates()
        mix = self.application_mix()
        departments = list(rates)
        group = np.where(rng.random(n_rows) < 0.5, "B", "A").astype(object)
        shares_a = np.asarray([mix[dept][0] for dept in departments])
        shares_b = np.asarray([mix[dept][1] for dept in departments])
        dept_index = np.empty(n_rows, dtype=np.intp)
        mask_a = group == "A"
        dept_index[mask_a] = rng.choice(
            len(departments), size=int(mask_a.sum()), p=shares_a
        )
        dept_index[~mask_a] = rng.choice(
            len(departments), size=int((~mask_a).sum()), p=shares_b
        )
        department = np.asarray(
            [departments[index] for index in dept_index], dtype=object
        )
        prob = np.asarray([
            rates[departments[index]][1] if is_b else rates[departments[index]][0]
            for index, is_b in zip(dept_index, group == "B")
        ])
        admitted = bernoulli(prob, rng)
        return Table(self.schema(), {
            "department": department,
            "group": group,
            "admitted": admitted,
        })


class TreatmentParadoxGenerator(SyntheticGenerator):
    """Kidney-stone-style paradox: the better treatment looks worse overall.

    Treatment 1 is assigned preferentially to *severe* cases; within each
    severity stratum it improves the success probability by
    ``treatment_benefit``, yet its aggregate success rate is lower.
    """

    name = "treatment_paradox"

    def __init__(self, treatment_benefit: float = 0.05,
                 severe_fraction: float = 0.5,
                 severity_penalty: float = 0.35):
        if not 0.0 <= treatment_benefit <= 0.2:
            raise DataError("treatment_benefit must be in [0, 0.2]")
        self.treatment_benefit = treatment_benefit
        self.severe_fraction = severe_fraction
        self.severity_penalty = severity_penalty

    def schema(self) -> Schema:
        """The generated table's schema."""
        return Schema([
            categorical("severity"),
            numeric("treated", description="1 = received treatment 1"),
            numeric("recovered", role=ColumnRole.TARGET),
        ])

    def generate(self, n_rows: int, rng: np.random.Generator) -> Table:
        if n_rows <= 0:
            raise DataError("n_rows must be positive")
        severe = rng.random(n_rows) < self.severe_fraction
        severity = np.where(severe, "severe", "mild").astype(object)
        # Doctors give the new treatment mostly to severe cases.
        treat_p = np.where(severe, 0.85, 0.15)
        treated = bernoulli(treat_p, rng)
        base = np.where(severe, 0.90 - self.severity_penalty, 0.90)
        prob = np.clip(base + self.treatment_benefit * treated, 0.0, 1.0)
        recovered = bernoulli(prob, rng)
        return Table(self.schema(), {
            "severity": severity,
            "treated": treated,
            "recovered": recovered,
        })
