"""Advertising-measurement generator (Gordon et al. 2016 scenario).

The paper: "their outcomes might still be far away from the results one
would obtain with a randomized controlled trial as was recently
illustrated by Gordon et al. (2016)".  We cannot re-run Facebook's field
experiments, so we build the closest synthetic equivalent: one population
with a *known* true ad effect, observed either through an RCT (random
exposure) or through a confounded observational study (exposure targeted
at likely purchasers).  E6 then measures how close naive, PSM, IPW and
AIPW estimates come to the RCT / ground truth — reproducing exactly the
gap Gordon et al. report.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnRole, Schema, numeric
from repro.data.synth.base import SyntheticGenerator, bernoulli, sigmoid
from repro.data.table import Table
from repro.exceptions import DataError


class AdCampaignGenerator(SyntheticGenerator):
    """Users with covariates, a known ad lift, and two exposure regimes.

    Parameters
    ----------
    true_lift:
        Additive effect of exposure on the purchase log-odds (ground truth).
    confounding:
        How strongly observational exposure targets users who would buy
        anyway (0 = exposure random even observationally).
    hidden_confounding:
        Weight of a covariate the analyst does *not* observe; with > 0 the
        adjusted observational estimates stay biased — the Gordon et al.
        headline finding.
    """

    name = "ad_campaign"

    def __init__(self, true_lift: float = 0.4,
                 confounding: float = 1.2,
                 hidden_confounding: float = 0.0,
                 base_rate_shift: float = -1.4):
        self.true_lift = true_lift
        self.confounding = confounding
        self.hidden_confounding = hidden_confounding
        self.base_rate_shift = base_rate_shift

    def schema(self) -> Schema:
        """The generated table's schema."""
        return Schema([
            numeric("activity", description="site engagement score"),
            numeric("past_purchases"),
            numeric("ad_affinity", description="interest match with campaign"),
            numeric("hidden_intent", role=ColumnRole.METADATA,
                    description="latent purchase intent (unobserved)"),
            numeric("exposed", description="1 = saw the ad"),
            numeric("purchase", role=ColumnRole.TARGET),
            numeric("purchase_if_exposed", role=ColumnRole.METADATA,
                    description="potential outcome Y(1) (oracle)"),
            numeric("purchase_if_not", role=ColumnRole.METADATA,
                    description="potential outcome Y(0) (oracle)"),
        ])

    def _covariates(self, n_rows: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
        return {
            "activity": np.clip(rng.gamma(2.0, 1.5, n_rows), 0.0, 20.0),
            "past_purchases": rng.poisson(1.2, n_rows).astype(np.float64),
            "ad_affinity": rng.normal(0.0, 1.0, n_rows),
            "hidden_intent": rng.normal(0.0, 1.0, n_rows),
        }

    def _outcome_logits(self, cov: dict[str, np.ndarray]) -> np.ndarray:
        return (
            0.25 * cov["activity"]
            + 0.5 * cov["past_purchases"]
            + 0.6 * cov["ad_affinity"]
            + 0.8 * cov["hidden_intent"]
            + self.base_rate_shift
        )

    def _generate(self, n_rows: int, rng: np.random.Generator,
                  exposure_p: np.ndarray) -> Table:
        cov = self._covariates(n_rows, rng)
        logits = self._outcome_logits(cov)
        exposed = bernoulli(exposure_p, rng)
        p_if_not = sigmoid(logits)
        p_if_exposed = sigmoid(logits + self.true_lift)
        uniforms = rng.random(n_rows)
        y_if_not = (uniforms < p_if_not).astype(np.float64)
        y_if_exposed = (uniforms < p_if_exposed).astype(np.float64)
        purchase = np.where(exposed == 1.0, y_if_exposed, y_if_not)
        return Table(self.schema(), {
            **cov,
            "exposed": exposed,
            "purchase": purchase,
            "purchase_if_exposed": y_if_exposed,
            "purchase_if_not": y_if_not,
        })

    def generate(self, n_rows: int, rng: np.random.Generator) -> Table:
        """Observational draw (confounded exposure)."""
        return self.generate_observational(n_rows, rng)

    def generate_rct(self, n_rows: int, rng: np.random.Generator,
                     exposure_rate: float = 0.5) -> Table:
        """Randomised exposure: the gold standard of §2-Q2."""
        if not 0.0 < exposure_rate < 1.0:
            raise DataError("exposure_rate must be in (0, 1)")
        return self._generate(
            n_rows, rng, np.full(n_rows, exposure_rate)
        )

    def generate_observational(self, n_rows: int,
                               rng: np.random.Generator) -> Table:
        """Targeted exposure: likely purchasers see the ad more often."""
        cov = self._covariates(n_rows, rng)
        targeting = (
            0.25 * cov["activity"]
            + 0.5 * cov["past_purchases"]
            + 0.6 * cov["ad_affinity"]
            + self.hidden_confounding * cov["hidden_intent"]
        )
        targeting = (targeting - targeting.mean()) / max(targeting.std(), 1e-9)
        exposure_p = sigmoid(self.confounding * targeting)
        # Redraw covariates inside _generate would break the targeting link,
        # so rebuild the table here with the covariates we targeted on.
        logits = self._outcome_logits(cov)
        exposed = bernoulli(exposure_p, rng)
        p_if_not = sigmoid(logits)
        p_if_exposed = sigmoid(logits + self.true_lift)
        uniforms = rng.random(n_rows)
        y_if_not = (uniforms < p_if_not).astype(np.float64)
        y_if_exposed = (uniforms < p_if_exposed).astype(np.float64)
        purchase = np.where(exposed == 1.0, y_if_exposed, y_if_not)
        return Table(self.schema(), {
            **cov,
            "exposed": exposed,
            "purchase": purchase,
            "purchase_if_exposed": y_if_exposed,
            "purchase_if_not": y_if_not,
        })

    @staticmethod
    def true_ate(table: Table) -> float:
        """Sample average treatment effect from the potential outcomes."""
        return float(
            np.mean(table.column("purchase_if_exposed"))
            - np.mean(table.column("purchase_if_not"))
        )
