"""Hiring-funnel generator for the end-to-end FACT audit (E11).

A multi-stage decision — screening then interview then offer — whose
stages can each be biased independently.  Exactly the paper's "journey
from raw data to meaningful inferences involves multiple steps and
actors": responsibility must be attributable per stage.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnRole, Schema, categorical, numeric
from repro.data.synth.base import SyntheticGenerator, bernoulli, sigmoid
from repro.data.table import Table
from repro.exceptions import DataError

DEGREES = ("none", "bachelor", "master", "phd")
_DEGREE_SCORE = {"none": 0.0, "bachelor": 1.0, "master": 1.5, "phd": 1.8}


class HiringFunnelGenerator(SyntheticGenerator):
    """Job applications flowing through screen → interview → offer.

    ``screen_bias`` penalises group-B candidates at the resume screen;
    ``interview_bias`` at the interview.  The final ``hired`` label is the
    conjunction, so bias injected early is invisible in stage-local audits
    of later stages — motivating pipeline-wide provenance.
    """

    name = "hiring"

    def __init__(self, group_b_fraction: float = 0.45,
                 screen_bias: float = 0.0,
                 interview_bias: float = 0.0,
                 referral_advantage: float = 0.6):
        if not 0.0 < group_b_fraction < 1.0:
            raise DataError("group_b_fraction must be in (0, 1)")
        self.group_b_fraction = group_b_fraction
        self.screen_bias = screen_bias
        self.interview_bias = interview_bias
        self.referral_advantage = referral_advantage

    def schema(self) -> Schema:
        """The generated table's schema."""
        return Schema([
            numeric("experience_years"),
            numeric("skill_score", description="blind skills test, 0-100"),
            categorical("degree"),
            numeric("referral", description="1 if referred by an employee"),
            categorical("group", role=ColumnRole.SENSITIVE),
            numeric("passed_screen", role=ColumnRole.METADATA),
            numeric("passed_interview", role=ColumnRole.METADATA),
            numeric("hired", role=ColumnRole.TARGET),
        ])

    def generate(self, n_rows: int, rng: np.random.Generator) -> Table:
        if n_rows <= 0:
            raise DataError("n_rows must be positive")
        group = np.where(
            rng.random(n_rows) < self.group_b_fraction, "B", "A"
        ).astype(object)
        is_b = (group == "B").astype(np.float64)
        experience = np.clip(rng.gamma(2.0, 3.0, n_rows), 0.0, 35.0)
        skill = np.clip(rng.normal(60.0, 15.0, n_rows), 0.0, 100.0)
        degree = np.asarray(
            [DEGREES[index] for index in
             rng.choice(len(DEGREES), size=n_rows, p=[0.2, 0.45, 0.25, 0.1])],
            dtype=object,
        )
        degree_score = np.asarray([_DEGREE_SCORE[value] for value in degree])
        # Referral networks replicate the incumbent workforce (group A).
        referral_p = np.where(group == "A", 0.25, 0.25 * (1.0 - 0.5 * self.referral_advantage))
        referral = bernoulli(referral_p, rng)

        screen_latent = (
            0.10 * experience + 0.04 * (skill - 60.0) + 0.9 * degree_score
            + self.referral_advantage * referral - 1.2 - self.screen_bias * is_b
        )
        passed_screen = bernoulli(sigmoid(screen_latent), rng)

        interview_latent = (
            0.06 * (skill - 60.0) + 0.08 * experience + 0.3 * degree_score
            - 0.2 - self.interview_bias * is_b
        )
        passed_interview = passed_screen * bernoulli(sigmoid(interview_latent), rng)
        hired = passed_interview.copy()

        return Table(self.schema(), {
            "experience_years": experience,
            "skill_score": skill,
            "degree": degree,
            "referral": referral,
            "group": group,
            "passed_screen": passed_screen,
            "passed_interview": passed_interview,
            "hired": hired,
        })
