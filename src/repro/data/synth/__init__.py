"""Synthetic dataset generators with known ground truth and injectable bias."""

from repro.data.synth.adexperiment import AdCampaignGenerator
from repro.data.synth.base import SyntheticGenerator, bernoulli, choose, sigmoid
from repro.data.synth.bias import (
    BiasRecord,
    add_categorical_proxy,
    add_numeric_proxy,
    inject_label_bias,
    inject_selection_bias,
    inject_underrepresentation,
)
from repro.data.synth.census import CensusIncomeGenerator
from repro.data.synth.credit import CreditScoringGenerator
from repro.data.synth.events import INTERNET_MINUTE_VOLUMES, InternetMinuteGenerator
from repro.data.synth.hiring import HiringFunnelGenerator
from repro.data.synth.lending import LendingRelationalGenerator
from repro.data.synth.recidivism import RecidivismGenerator
from repro.data.synth.simpson import AdmissionsGenerator, TreatmentParadoxGenerator

__all__ = [
    "INTERNET_MINUTE_VOLUMES",
    "AdCampaignGenerator",
    "AdmissionsGenerator",
    "BiasRecord",
    "CensusIncomeGenerator",
    "CreditScoringGenerator",
    "HiringFunnelGenerator",
    "InternetMinuteGenerator",
    "LendingRelationalGenerator",
    "RecidivismGenerator",
    "SyntheticGenerator",
    "TreatmentParadoxGenerator",
    "add_categorical_proxy",
    "add_numeric_proxy",
    "bernoulli",
    "choose",
    "inject_label_bias",
    "inject_selection_bias",
    "inject_underrepresentation",
    "sigmoid",
]
