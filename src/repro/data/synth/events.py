"""Event-stream generator scaled to the paper's "Internet Minute".

§3 lists per-minute volumes (1,000,000 Tinder swipes, 3,500,000 Google
searches, …) to argue that pipeline accountability must work at volume.
We obviously do not replay production traffic; instead this generator
draws an event stream whose *relative* service mix matches the paper's
figures, downscaled by a factor the benchmarks control.  E10 measures
provenance overhead on this stream.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnRole, Schema, categorical, numeric
from repro.data.synth.base import SyntheticGenerator
from repro.data.table import Table
from repro.exceptions import DataError

# Events per minute as listed in §3 of the paper.
INTERNET_MINUTE_VOLUMES: dict[str, int] = {
    "tinder_swipe": 1_000_000,
    "google_search": 3_500_000,
    "siri_answer": 100_000,
    "dropbox_upload": 850_000,
    "facebook_login": 900_000,
    "tweet": 450_000,
    "snap": 7_000_000,
}


class InternetMinuteGenerator(SyntheticGenerator):
    """Scaled-down draw from the paper's Internet-Minute service mix.

    ``scale`` multiplies the per-minute volumes (1e-4 gives ~1.4k events
    per simulated minute).  Events carry a pseudonymisable ``user_id``
    (IDENTIFIER role) so the confidentiality pillar has something to
    protect in the pipeline experiments.
    """

    name = "internet_minute"

    def __init__(self, scale: float = 1e-4, minutes: int = 1,
                 n_users: int = 5000):
        if scale <= 0:
            raise DataError("scale must be positive")
        if minutes < 1:
            raise DataError("minutes must be >= 1")
        self.scale = scale
        self.minutes = minutes
        self.n_users = n_users

    def expected_events_per_minute(self) -> int:
        """Expected stream volume per simulated minute after scaling."""
        return int(sum(
            round(volume * self.scale) for volume in INTERNET_MINUTE_VOLUMES.values()
        ))

    def schema(self) -> Schema:
        """The generated table's schema."""
        return Schema([
            numeric("timestamp", description="seconds since stream start"),
            categorical("service"),
            categorical("user_id", role=ColumnRole.IDENTIFIER),
            numeric("payload_bytes"),
            categorical("region", role=ColumnRole.QUASI_IDENTIFIER),
        ])

    def generate(self, n_rows: int, rng: np.random.Generator) -> Table:
        """Draw exactly ``n_rows`` events with the paper's service mix."""
        if n_rows <= 0:
            raise DataError("n_rows must be positive")
        services = list(INTERNET_MINUTE_VOLUMES)
        volumes = np.asarray(
            [INTERNET_MINUTE_VOLUMES[service] for service in services],
            dtype=np.float64,
        )
        mix = volumes / volumes.sum()
        service_index = rng.choice(len(services), size=n_rows, p=mix)
        service = np.asarray(
            [services[index] for index in service_index], dtype=object
        )
        timestamp = np.sort(rng.uniform(0.0, 60.0 * self.minutes, n_rows))
        user_id = np.asarray(
            [f"user_{index:06d}" for index in rng.integers(0, self.n_users, n_rows)],
            dtype=object,
        )
        payload = np.exp(rng.normal(6.0, 1.5, n_rows))
        regions = ("eu", "na", "sa", "apac", "mea")
        region = np.asarray(
            [regions[index] for index in rng.integers(0, len(regions), n_rows)],
            dtype=object,
        )
        return Table(self.schema(), {
            "timestamp": timestamp,
            "service": service,
            "user_id": user_id,
            "payload_bytes": payload,
            "region": region,
        })

    def generate_stream(self, rng: np.random.Generator) -> Table:
        """Draw a stream sized by ``scale`` and ``minutes``."""
        n_rows = max(1, self.expected_events_per_minute() * self.minutes)
        return self.generate(n_rows, rng)
