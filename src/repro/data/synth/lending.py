"""Relational lending generator: the join-reintroduces-a-proxy scenario.

Three related tables with a known causal structure:

* ``zones`` — geographic areas with an ``area_score`` affluence index;
* ``applicants`` — people, each with a SENSITIVE ``group`` and a home
  zone; residential segregation ties group to zone (strength
  ``segregation``), so ``area_score`` is a *spatial proxy* for group;
* ``applications`` — loan applications (several per applicant), whose
  financial features are drawn group-blind and whose historical
  ``approved`` label carries injected bias against group-B qualified
  applicants (strength ``label_bias``).

The point of the construction: the ``applications`` table **on its own**
is clean — its features are independent of group by design, so a model
trained on it exhibits near-parity and a single-table fairness audit
passes.  Join in ``applicants`` and ``zones`` and the innocuous-looking
``area_score`` becomes available to the model; through segregation it
re-encodes group, the model uses it to fit the biased labels, and the
same audit fails.  That is §2-Q1's warning made executable — redaction
is not a property of a table, it is a property of a *schema*.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnRole, Schema, categorical, numeric
from repro.data.synth.base import SyntheticGenerator, bernoulli, sigmoid
from repro.data.table import Table
from repro.exceptions import DataError
from repro.relational import (
    Dataset,
    ForeignKey,
    RelSchema,
    TableSpec,
    inner_join,
)

GROUPS = ("A", "B")


class LendingRelationalGenerator(SyntheticGenerator):
    """Multi-table lending data with a join-borne proxy.

    Parameters
    ----------
    group_b_fraction:
        Share of applicants in the protected group ``"B"``.
    label_bias:
        Fraction of group-B *qualified* applications whose historical
        label is flipped to denied.
    segregation:
        Probability an applicant lives in a zone "aligned" with their
        group (A → affluent, B → redlined); 0.5 removes the group↔zone
        association entirely, and with it the proxy.
    n_zones:
        Number of zones (half affluent, half redlined).
    apps_per_applicant:
        Mean number of applications per applicant.
    noise:
        Label-noise temperature on the latent qualification score.
    """

    name = "lending"

    def __init__(self, group_b_fraction: float = 0.35,
                 label_bias: float = 0.4,
                 segregation: float = 0.9,
                 n_zones: int = 8,
                 apps_per_applicant: float = 1.6,
                 noise: float = 0.5):
        if not 0.0 < group_b_fraction < 1.0:
            raise DataError("group_b_fraction must be in (0, 1)")
        if not 0.0 <= label_bias <= 1.0:
            raise DataError("label_bias must be in [0, 1]")
        if not 0.0 <= segregation <= 1.0:
            raise DataError("segregation must be in [0, 1]")
        if n_zones < 2 or n_zones % 2:
            raise DataError("n_zones must be an even number >= 2")
        if apps_per_applicant < 1.0:
            raise DataError("apps_per_applicant must be at least 1")
        self.group_b_fraction = group_b_fraction
        self.label_bias = label_bias
        self.segregation = segregation
        self.n_zones = n_zones
        self.apps_per_applicant = apps_per_applicant
        self.noise = noise

    # -- schemas -------------------------------------------------------------

    def zones_schema(self) -> Schema:
        return Schema([
            categorical("zone_id", description="zone code"),
            numeric("area_score",
                    description="zone affluence index; the spatial proxy"),
        ])

    def applicants_schema(self) -> Schema:
        return Schema([
            categorical("applicant_id", role=ColumnRole.IDENTIFIER),
            categorical("group", role=ColumnRole.SENSITIVE),
            categorical("zone_id", description="home zone"),
        ])

    def applications_schema(self) -> Schema:
        return Schema([
            categorical("app_id", role=ColumnRole.IDENTIFIER),
            categorical("applicant_id", role=ColumnRole.METADATA,
                        description="link to the applicants table"),
            numeric("income", description="monthly income, thousands"),
            numeric("debt_ratio"),
            numeric("credit_history"),
            numeric("qualified", role=ColumnRole.METADATA,
                    description="latent ground truth (oracle)"),
            numeric("approved", role=ColumnRole.TARGET,
                    description="historical lending decision"),
        ])

    def relational_schema(self) -> RelSchema:
        """The three tables and their foreign-key wiring."""
        return RelSchema("lending", [
            TableSpec("zones", self.zones_schema(), key="zone_id"),
            TableSpec("applicants", self.applicants_schema(),
                      key="applicant_id",
                      foreign_keys=(
                          ForeignKey("zone_id", "zones", "zone_id"),)),
            TableSpec("applications", self.applications_schema(),
                      key="app_id",
                      foreign_keys=(
                          ForeignKey("applicant_id", "applicants",
                                     "applicant_id"),)),
        ])

    # -- generation ----------------------------------------------------------

    def generate_dataset(self, n_applicants: int,
                         rng: np.random.Generator) -> Dataset:
        """Draw a full relational :class:`~repro.relational.Dataset`."""
        if n_applicants <= 0:
            raise DataError("n_applicants must be positive")

        # zones: first half affluent, second half redlined.
        half = self.n_zones // 2
        zone_ids = np.asarray(
            [f"z{index:02d}" for index in range(self.n_zones)], dtype=object
        )
        area_score = np.concatenate([
            np.clip(rng.normal(0.75, 0.05, half), 0.0, 1.0),
            np.clip(rng.normal(0.25, 0.05, self.n_zones - half), 0.0, 1.0),
        ])
        zones = Table(self.zones_schema(),
                      {"zone_id": zone_ids, "area_score": area_score})

        # applicants: group, then a (segregation-weighted) home zone.
        applicant_ids = np.asarray(
            [f"a{index:05d}" for index in range(n_applicants)], dtype=object
        )
        is_b = rng.random(n_applicants) < self.group_b_fraction
        group = np.where(is_b, GROUPS[1], GROUPS[0]).astype(object)
        aligned = rng.random(n_applicants) < self.segregation
        affluent_pick = rng.integers(0, half, n_applicants)
        redlined_pick = rng.integers(half, self.n_zones, n_applicants)
        any_pick = rng.integers(0, self.n_zones, n_applicants)
        zone_index = np.where(
            aligned, np.where(is_b, redlined_pick, affluent_pick), any_pick
        )
        applicants = Table(self.applicants_schema(), {
            "applicant_id": applicant_ids,
            "group": group,
            "zone_id": zone_ids[zone_index],
        })

        # applications: financial features group-blind by construction.
        n_apps = int(round(n_applicants * self.apps_per_applicant))
        owner = rng.integers(0, n_applicants, n_apps)
        income = np.exp(rng.normal(1.2, 0.45, n_apps))
        debt_ratio = np.clip(rng.beta(2.0, 5.0, n_apps), 0.0, 1.0)
        credit_history = np.clip(rng.normal(0.6, 0.2, n_apps), 0.0, 1.0)
        latent = (
            0.9 * np.log(income)
            - 2.2 * debt_ratio
            + 1.8 * credit_history
            - 0.9
        )
        qualified = bernoulli(sigmoid(latent / max(self.noise, 1e-9)), rng)
        approved = qualified.copy()
        # Historical bias: qualified group-B applications flip to denied.
        flip = (
            is_b[owner] & (qualified > 0.5)
            & (rng.random(n_apps) < self.label_bias)
        )
        approved[flip] = 0.0
        applications = Table(self.applications_schema(), {
            "app_id": np.asarray(
                [f"l{index:05d}" for index in range(n_apps)], dtype=object
            ),
            "applicant_id": applicant_ids[owner],
            "income": income,
            "debt_ratio": debt_ratio,
            "credit_history": credit_history,
            "qualified": qualified,
            "approved": approved,
        })

        return Dataset(self.relational_schema(), {
            "zones": zones,
            "applicants": applicants,
            "applications": applications,
        })

    def generate(self, n_rows: int, rng: np.random.Generator) -> Table:
        """The fully joined flat view (one row per application)."""
        dataset = self.generate_dataset(
            max(1, int(round(n_rows / self.apps_per_applicant))), rng
        )
        flat = dataset.join("applications", "applicants")
        return inner_join(flat, dataset.table("zones"), "zone_id")

    @staticmethod
    def oracle_labels(table: Table) -> np.ndarray:
        """The latent ground-truth qualifications (audit oracle)."""
        return table.column("qualified")
