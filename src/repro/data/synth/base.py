"""Shared machinery for synthetic dataset generators.

Real census/credit/recidivism data cannot ship with this repository, and —
more importantly for a *reproduction* — real data has unknown ground truth.
Every generator here exposes the latent quantities (true qualification,
true treatment effect, injected bias strength) so the experiments can
measure how far each pipeline strays from a *known* truth, which is exactly
what the paper's FACT questions ask for.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.table import Table
from repro.exceptions import DataError


def sigmoid(z: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable logistic function."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    if out.ndim == 0:
        return float(out)
    return out


def bernoulli(probabilities: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draw 0/1 outcomes with per-row probabilities."""
    probabilities = np.clip(np.asarray(probabilities, dtype=np.float64), 0.0, 1.0)
    return (rng.random(probabilities.shape) < probabilities).astype(np.float64)


def choose(categories: list[str], probabilities: np.ndarray,
           rng: np.random.Generator) -> np.ndarray:
    """Draw categorical values with per-row probability matrices.

    ``probabilities`` has shape ``(n_rows, n_categories)``; each row must
    sum to one.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 2 or probabilities.shape[1] != len(categories):
        raise DataError(
            f"probability matrix shape {probabilities.shape} does not match "
            f"{len(categories)} categories"
        )
    cumulative = np.cumsum(probabilities, axis=1)
    draws = rng.random((len(probabilities), 1))
    indices = (draws >= cumulative).sum(axis=1)
    indices = np.clip(indices, 0, len(categories) - 1)
    return np.asarray([categories[index] for index in indices], dtype=object)


class SyntheticGenerator(abc.ABC):
    """Base class: a parameterised distribution over FACT-annotated tables."""

    name: str = "synthetic"

    @abc.abstractmethod
    def generate(self, n_rows: int, rng: np.random.Generator) -> Table:
        """Draw ``n_rows`` examples."""

    def generate_pair(self, n_train: int, n_test: int,
                      rng: np.random.Generator) -> tuple[Table, Table]:
        """Independent train and test draws from the same distribution."""
        return self.generate(n_train, rng), self.generate(n_test, rng)

    def params(self) -> dict[str, object]:
        """The generator's public parameters (for datasheets/provenance)."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_")
        }

    def __repr__(self) -> str:
        rendered = ", ".join(f"{key}={value!r}" for key, value in self.params().items())
        return f"{type(self).__name__}({rendered})"
