"""Census-income generator (Adult-dataset-shaped).

Used by the transparency and conformal-prediction experiments, where a
richer, partly non-linear feature-to-label map is needed so that the
"black box beats the interpretable model" premise of §2-Q4 actually holds.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnRole, Schema, categorical, numeric
from repro.data.synth.base import SyntheticGenerator, bernoulli, sigmoid
from repro.data.table import Table
from repro.exceptions import DataError

OCCUPATIONS = ("clerical", "technical", "service", "managerial", "manual", "sales")
EDUCATION_LEVELS = ("basic", "secondary", "bachelor", "master", "doctorate")
_EDUCATION_YEARS = {"basic": 9.0, "secondary": 12.0, "bachelor": 16.0,
                    "master": 18.0, "doctorate": 21.0}


class CensusIncomeGenerator(SyntheticGenerator):
    """Census records with a non-linear high-income mechanism.

    The label depends on interactions (education x occupation, an
    hours-worked plateau, an age hump) that a linear model cannot fully
    express — giving the MLP "black box" a genuine accuracy edge for E9.
    """

    name = "census"

    def __init__(self, sex_gap: float = 0.0, noise: float = 0.5):
        self.sex_gap = sex_gap
        self.noise = noise

    def schema(self) -> Schema:
        """The generated table's schema."""
        return Schema([
            numeric("age", role=ColumnRole.QUASI_IDENTIFIER),
            categorical("education"),
            numeric("education_years"),
            numeric("hours_per_week"),
            categorical("occupation", role=ColumnRole.QUASI_IDENTIFIER),
            numeric("capital_gain"),
            categorical("sex", role=ColumnRole.SENSITIVE),
            categorical("zipcode", role=ColumnRole.QUASI_IDENTIFIER),
            numeric("high_income", role=ColumnRole.TARGET),
        ])

    def generate(self, n_rows: int, rng: np.random.Generator) -> Table:
        if n_rows <= 0:
            raise DataError("n_rows must be positive")
        age = np.clip(rng.normal(40.0, 12.0, n_rows), 18.0, 80.0)
        education_index = rng.choice(
            len(EDUCATION_LEVELS), size=n_rows, p=[0.15, 0.35, 0.3, 0.15, 0.05]
        )
        education = np.asarray(
            [EDUCATION_LEVELS[index] for index in education_index], dtype=object
        )
        education_years = np.asarray(
            [_EDUCATION_YEARS[level] for level in education]
        ) + rng.normal(0.0, 0.5, n_rows)
        hours = np.clip(rng.normal(41.0, 9.0, n_rows), 5.0, 90.0)
        occupation = np.asarray(
            [OCCUPATIONS[index] for index in rng.integers(0, len(OCCUPATIONS), n_rows)],
            dtype=object,
        )
        capital_gain = np.where(
            rng.random(n_rows) < 0.08, np.exp(rng.normal(7.5, 1.0, n_rows)), 0.0
        )
        sex = np.where(rng.random(n_rows) < 0.5, "female", "male").astype(object)
        zipcode = np.asarray(
            [f"Z{index:02d}" for index in rng.integers(0, 40, n_rows)], dtype=object
        )

        managerial = (occupation == "managerial").astype(np.float64)
        technical = (occupation == "technical").astype(np.float64)
        # Non-linearities: education pays more in managerial/technical roles,
        # hours saturate past 50, age follows a mid-career hump.
        hours_effect = np.minimum(hours, 50.0) / 10.0
        age_hump = -((age - 48.0) / 18.0) ** 2
        latent = (
            0.55 * (education_years - 12.0) * (0.5 + managerial + 0.6 * technical)
            + 0.8 * hours_effect
            + 1.6 * age_hump
            + 0.9 * np.log1p(capital_gain) / 8.0
            - 2.2
        )
        if self.sex_gap:
            latent = latent - self.sex_gap * (sex == "female").astype(np.float64)
        high_income = bernoulli(sigmoid(latent / max(self.noise, 1e-9)), rng)

        return Table(self.schema(), {
            "age": age,
            "education": education,
            "education_years": education_years,
            "hours_per_week": hours,
            "occupation": occupation,
            "capital_gain": capital_gain,
            "sex": sex,
            "zipcode": zipcode,
            "high_income": high_income,
        })
