"""Recidivism-risk generator (COMPAS-shaped).

Exercises the impossibility tension between calibration and error-rate
parity: base rates differ across groups by construction (via differential
policing intensity), so a calibrated score cannot equalise false-positive
rates — the audit should *show* that, as the fairness literature the
paper's Q1 points to established.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnRole, Schema, categorical, numeric
from repro.data.synth.base import SyntheticGenerator, bernoulli, sigmoid
from repro.data.table import Table
from repro.exceptions import DataError

CHARGE_DEGREES = ("misdemeanor", "felony")


class RecidivismGenerator(SyntheticGenerator):
    """Defendant records with group-dependent *measured* recidivism.

    ``policing_gap`` raises the chance that a re-offence by group-B
    members is recorded: the latent behaviour is group-blind, the measured
    base rates are not — measurement bias, the subtlest pathology in Q1.
    """

    name = "recidivism"

    def __init__(self, group_b_fraction: float = 0.4,
                 policing_gap: float = 0.0,
                 noise: float = 0.7):
        if not 0.0 < group_b_fraction < 1.0:
            raise DataError("group_b_fraction must be in (0, 1)")
        self.group_b_fraction = group_b_fraction
        self.policing_gap = policing_gap
        self.noise = noise

    def schema(self) -> Schema:
        """The generated table's schema."""
        return Schema([
            numeric("age", role=ColumnRole.QUASI_IDENTIFIER),
            numeric("priors_count"),
            numeric("juvenile_offenses"),
            categorical("charge_degree"),
            categorical("group", role=ColumnRole.SENSITIVE),
            numeric("reoffended_latent", role=ColumnRole.METADATA,
                    description="true re-offence indicator (oracle)"),
            numeric("reoffended", role=ColumnRole.TARGET,
                    description="recorded re-offence within two years"),
        ])

    def generate(self, n_rows: int, rng: np.random.Generator) -> Table:
        if n_rows <= 0:
            raise DataError("n_rows must be positive")
        group = np.where(
            rng.random(n_rows) < self.group_b_fraction, "B", "A"
        ).astype(object)
        age = np.clip(rng.gamma(6.0, 5.5, n_rows), 18.0, 75.0)
        priors = rng.poisson(2.0, n_rows).astype(np.float64)
        juvenile = rng.poisson(0.4, n_rows).astype(np.float64)
        charge = np.where(
            rng.random(n_rows) < 0.35, "felony", "misdemeanor"
        ).astype(object)

        latent_score = (
            0.35 * priors
            + 0.5 * juvenile
            + 0.8 * (charge == "felony").astype(np.float64)
            - 0.05 * (age - 18.0)
            - 0.2
        )
        reoffended_latent = bernoulli(
            sigmoid(latent_score / max(self.noise, 1e-9)), rng
        )
        # Measurement: re-offences are only *recorded* if detected.
        detection = np.where(group == "B", 0.75 + self.policing_gap * 0.25, 0.75)
        detection = np.clip(detection, 0.0, 1.0)
        recorded = reoffended_latent * bernoulli(detection, rng)

        return Table(self.schema(), {
            "age": age,
            "priors_count": priors,
            "juvenile_offenses": juvenile,
            "charge_degree": charge,
            "group": group,
            "reoffended_latent": reoffended_latent,
            "reoffended": recorded,
        })
