"""Bias injectors: turn a clean dataset into the datasets the paper warns about.

Each injector implements one of the mechanisms §2-Q1 names:

* **label bias** — "the data used to learn a model reflects existing social
  biases": historical decisions flipped against one group.
* **selection bias** — "minorities may be underrepresented": positive
  examples of one group under-sampled, or the group as a whole.
* **proxy encoding** — "even if sensitive attributes are omitted, members
  of certain groups may still be systematically rejected": a seemingly
  innocuous column that encodes the sensitive one (redlining).

All injectors are pure: they return a new :class:`Table` and an exact
record of what was done, so experiments can plot *injected* bias against
*measured* unfairness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import ColumnRole, categorical, numeric
from repro.data.table import Table
from repro.exceptions import DataError


@dataclass(frozen=True)
class BiasRecord:
    """What an injector changed: kind, parameters, and affected row count."""

    kind: str
    group: str
    strength: float
    n_affected: int


def _group_mask(table: Table, sensitive: str, group: str) -> np.ndarray:
    mask = table.column(sensitive) == group
    if not mask.any():
        raise DataError(f"no rows with {sensitive} == {group!r}")
    return mask


def inject_label_bias(table: Table, sensitive: str, group: str,
                      flip_rate: float, rng: np.random.Generator,
                      target: str | None = None,
                      ) -> tuple[Table, BiasRecord]:
    """Flip a fraction of the ``group``'s positive labels to negative.

    Models the historical decision maker who denied qualified members of
    the disadvantaged group: the *latent* qualification is unchanged, only
    the recorded outcome is corrupted.
    """
    if not 0.0 <= flip_rate <= 1.0:
        raise DataError(f"flip_rate must be in [0, 1], got {flip_rate}")
    target = target or table.target_name
    if target is None:
        raise DataError("no target column declared or named")
    labels = table.column(target).copy()
    eligible = np.flatnonzero(
        _group_mask(table, sensitive, group) & (labels == 1.0)
    )
    n_flip = int(round(flip_rate * len(eligible)))
    flipped = rng.choice(eligible, size=n_flip, replace=False) if n_flip else []
    labels[flipped] = 0.0
    spec = table.schema[target]
    biased = table.with_column(spec, labels)
    return biased, BiasRecord("label_bias", group, flip_rate, n_flip)


def inject_selection_bias(table: Table, sensitive: str, group: str,
                          drop_rate: float, rng: np.random.Generator,
                          positives_only: bool = True,
                          target: str | None = None,
                          ) -> tuple[Table, BiasRecord]:
    """Drop a fraction of the ``group``'s rows from the sample.

    With ``positives_only`` (default) only successful members of the group
    disappear — the classic pipeline pathology where the training data
    never saw the group succeed.
    """
    if not 0.0 <= drop_rate <= 1.0:
        raise DataError(f"drop_rate must be in [0, 1], got {drop_rate}")
    mask = _group_mask(table, sensitive, group)
    if positives_only:
        target = target or table.target_name
        if target is None:
            raise DataError("positives_only requires a target column")
        mask &= table.column(target) == 1.0
    eligible = np.flatnonzero(mask)
    n_drop = int(round(drop_rate * len(eligible)))
    dropped = rng.choice(eligible, size=n_drop, replace=False) if n_drop else np.array([], dtype=np.intp)
    keep = np.ones(table.n_rows, dtype=bool)
    keep[dropped] = False
    kind = "selection_bias_positives" if positives_only else "selection_bias"
    return table.filter(keep), BiasRecord(kind, group, drop_rate, int(n_drop))


def inject_underrepresentation(table: Table, sensitive: str, group: str,
                               keep_fraction: float, rng: np.random.Generator,
                               ) -> tuple[Table, BiasRecord]:
    """Keep only ``keep_fraction`` of the ``group``'s rows (all labels)."""
    if not 0.0 < keep_fraction <= 1.0:
        raise DataError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    eligible = np.flatnonzero(_group_mask(table, sensitive, group))
    n_keep = max(1, int(round(keep_fraction * len(eligible))))
    kept = set(rng.choice(eligible, size=n_keep, replace=False).tolist())
    keep = np.ones(table.n_rows, dtype=bool)
    for index in eligible:
        keep[index] = index in kept
    record = BiasRecord(
        "underrepresentation", group, 1.0 - keep_fraction, len(eligible) - n_keep
    )
    return table.filter(keep), record


def add_numeric_proxy(table: Table, sensitive: str, group: str,
                      proxy_name: str, correlation: float,
                      rng: np.random.Generator,
                      ) -> tuple[Table, BiasRecord]:
    """Add a numeric column correlated with membership in ``group``.

    ``correlation`` in [0, 1] controls how cleanly the proxy separates the
    groups: 0 is pure noise, 1 is a perfect re-encoding of the sensitive
    attribute.  The proxy gets the FEATURE role — precisely the trap the
    paper describes.
    """
    if not 0.0 <= correlation <= 1.0:
        raise DataError(f"correlation must be in [0, 1], got {correlation}")
    membership = _group_mask(table, sensitive, group).astype(np.float64)
    noise = rng.standard_normal(table.n_rows)
    # Scale so corr(proxy, membership) ~= `correlation` for a balanced group.
    signal_weight = correlation
    noise_weight = np.sqrt(max(1e-12, 1.0 - correlation**2))
    centred = membership - membership.mean()
    denominator = centred.std() if centred.std() > 0 else 1.0
    proxy = signal_weight * centred / denominator + noise_weight * noise
    biased = table.with_column(numeric(proxy_name), proxy)
    record = BiasRecord("numeric_proxy", group, correlation, table.n_rows)
    return biased, record


def add_categorical_proxy(table: Table, sensitive: str, group: str,
                          proxy_name: str, categories: list[str],
                          purity: float, rng: np.random.Generator,
                          ) -> tuple[Table, BiasRecord]:
    """Add a categorical column (e.g. ``neighborhood``) encoding the group.

    The first half of ``categories`` is preferentially assigned to the
    ``group``, the second half to everyone else; ``purity`` in [0, 1]
    controls how deterministic the assignment is (1 = redlining-perfect).
    """
    if len(categories) < 2:
        raise DataError("need at least two proxy categories")
    if not 0.0 <= purity <= 1.0:
        raise DataError(f"purity must be in [0, 1], got {purity}")
    half = len(categories) // 2
    in_group = _group_mask(table, sensitive, group)
    values = np.empty(table.n_rows, dtype=object)
    for index in range(table.n_rows):
        own_side = categories[:half] if in_group[index] else categories[half:]
        other_side = categories[half:] if in_group[index] else categories[:half]
        pool = own_side if rng.random() < (0.5 + purity / 2.0) else other_side
        values[index] = pool[rng.integers(0, len(pool))]
    biased = table.with_column(categorical(proxy_name), values)
    return biased, BiasRecord("categorical_proxy", group, purity, table.n_rows)


def mark_proxy_as_feature(table: Table, proxy_name: str) -> Table:
    """Ensure an injected proxy participates in model training."""
    return table.with_role(proxy_name, ColumnRole.FEATURE)
