"""Credit-scoring generator (German-credit-shaped) with injectable bias.

The canonical instance of the paper's Q1 scenario: a lender learns from
historical decisions.  The generator draws a *latent creditworthiness*
that is identically distributed across groups — by construction, any
group disparity a downstream model exhibits was injected, not real.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnRole, Schema, categorical, numeric
from repro.data.synth.bias import (
    add_categorical_proxy,
    add_numeric_proxy,
    inject_label_bias,
)
from repro.data.synth.base import SyntheticGenerator, bernoulli, sigmoid
from repro.data.table import Table
from repro.exceptions import DataError

GROUPS = ("A", "B")
PURPOSES = ("car", "education", "furniture", "business", "repairs")
NEIGHBORHOODS = ("north", "east", "south", "west", "center", "harbor")


class CreditScoringGenerator(SyntheticGenerator):
    """Loan applications with a known fair ground truth.

    Parameters
    ----------
    group_b_fraction:
        Share of applicants in the protected group ``"B"``.
    label_bias:
        Fraction of group-B qualified applicants whose historical label is
        flipped to "denied" (label-bias injection strength β in E1).
    proxy_strength:
        Purity of the ``neighborhood`` column as a proxy for group (ρ in
        E1); 0 removes the correlation entirely.
    noise:
        Standard deviation of the label noise on the latent score.
    """

    name = "credit"

    def __init__(self, group_b_fraction: float = 0.35,
                 label_bias: float = 0.0,
                 proxy_strength: float = 0.0,
                 numeric_proxy_strength: float = 0.0,
                 noise: float = 0.6):
        if not 0.0 < group_b_fraction < 1.0:
            raise DataError("group_b_fraction must be in (0, 1)")
        self.group_b_fraction = group_b_fraction
        self.label_bias = label_bias
        self.proxy_strength = proxy_strength
        self.numeric_proxy_strength = numeric_proxy_strength
        self.noise = noise

    def schema(self) -> Schema:
        """The generated table's schema."""
        return Schema([
            numeric("income", description="monthly income, thousands"),
            numeric("debt_ratio", description="debt to income ratio"),
            numeric("employment_years"),
            numeric("credit_history", description="past on-time payment score"),
            numeric("loan_amount", description="requested amount, thousands"),
            categorical("purpose"),
            categorical("neighborhood",
                        description="residential area; potential proxy"),
            numeric("area_score",
                    description="neighbourhood affluence index; numeric proxy"),
            categorical("group", role=ColumnRole.SENSITIVE),
            numeric("qualified", role=ColumnRole.METADATA,
                    description="latent ground-truth creditworthiness (oracle)"),
            numeric("approved", role=ColumnRole.TARGET,
                    description="historical lending decision"),
        ])

    def generate(self, n_rows: int, rng: np.random.Generator) -> Table:
        if n_rows <= 0:
            raise DataError("n_rows must be positive")
        group = np.where(
            rng.random(n_rows) < self.group_b_fraction, GROUPS[1], GROUPS[0]
        ).astype(object)

        income = np.exp(rng.normal(1.2, 0.45, n_rows))
        debt_ratio = np.clip(rng.beta(2.0, 5.0, n_rows), 0.0, 1.0)
        employment_years = np.clip(rng.gamma(2.5, 3.0, n_rows), 0.0, 45.0)
        credit_history = np.clip(rng.normal(0.6, 0.2, n_rows), 0.0, 1.0)
        loan_amount = np.exp(rng.normal(1.8, 0.6, n_rows))
        purpose = np.asarray(
            [PURPOSES[index] for index in rng.integers(0, len(PURPOSES), n_rows)],
            dtype=object,
        )

        # Latent creditworthiness: group-blind by construction.
        latent = (
            0.9 * np.log(income)
            - 2.2 * debt_ratio
            + 0.06 * employment_years
            + 1.8 * credit_history
            - 0.25 * np.log(loan_amount)
            - 0.35
        )
        qualified = bernoulli(
            sigmoid(latent / max(self.noise, 1e-9)), rng
        )

        table = Table(self.schema().drop(["neighborhood", "area_score"]), {
            "income": income,
            "debt_ratio": debt_ratio,
            "employment_years": employment_years,
            "credit_history": credit_history,
            "loan_amount": loan_amount,
            "purpose": purpose,
            "group": group,
            "qualified": qualified,
            "approved": qualified.copy(),
        })

        if self.label_bias > 0.0:
            table, _ = inject_label_bias(
                table, "group", GROUPS[1], self.label_bias, rng, target="approved"
            )
        table, _ = add_categorical_proxy(
            table, "group", GROUPS[1], "neighborhood",
            list(NEIGHBORHOODS), self.proxy_strength, rng,
        )
        # "area_score" leans low for group B, like a redlined affluence index.
        table, _ = add_numeric_proxy(
            table, "group", GROUPS[0], "area_score",
            self.numeric_proxy_strength, rng,
        )
        return table.select(self.schema().names)

    @staticmethod
    def oracle_labels(table: Table) -> np.ndarray:
        """The latent ground-truth qualifications (audit oracle)."""
        return table.column("qualified")
