"""CSV persistence for :class:`repro.data.table.Table`.

A deliberately small reader/writer: enough to round-trip generated
datasets and to ingest external CSVs into the pipeline's first stage.
Schema metadata (column roles) is persisted in an optional sidecar header
comment so that FACT annotations survive the round trip.
"""

from __future__ import annotations

import csv
import io
import os

from repro.data.schema import ColumnRole, ColumnSpec, ColumnType, Schema
from repro.data.table import Table, _infer_ctype
from repro.exceptions import DataError

_ROLE_PREFIX = "#repro-roles:"
_TYPE_PREFIX = "#repro-types:"


def write_csv(table: Table, path: str | os.PathLike,
              with_metadata: bool = True) -> None:
    """Write ``table`` to ``path`` as CSV.

    With ``with_metadata`` (the default) two comment lines record column
    types and FACT roles so :func:`read_csv` restores the exact schema.
    """
    with open(path, "w", newline="") as handle:
        if with_metadata:
            types = ",".join(spec.ctype.value for spec in table.schema)
            roles = ",".join(spec.role.value for spec in table.schema)
            handle.write(f"{_TYPE_PREFIX}{types}\n")
            handle.write(f"{_ROLE_PREFIX}{roles}\n")
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        arrays = table.columns(table.column_names)
        for index in range(table.n_rows):
            writer.writerow([array[index] for array in arrays])


def read_csv(path: str | os.PathLike, schema: Schema | None = None) -> Table:
    """Read a CSV written by :func:`write_csv` (or any plain CSV).

    Precedence for the schema: an explicit ``schema`` argument, then the
    metadata comment lines, then type inference per column.
    """
    with open(path, newline="") as handle:
        return _read(handle, schema)


def read_csv_string(text: str, schema: Schema | None = None) -> Table:
    """Parse CSV from a string (used by tests and examples)."""
    return _read(io.StringIO(text), schema)


def _read(handle, schema: Schema | None) -> Table:
    types_line = roles_line = None
    position = handle.tell()
    line = handle.readline()
    while line.startswith((_TYPE_PREFIX, _ROLE_PREFIX)):
        if line.startswith(_TYPE_PREFIX):
            types_line = line[len(_TYPE_PREFIX):].strip()
        else:
            roles_line = line[len(_ROLE_PREFIX):].strip()
        position = handle.tell()
        line = handle.readline()
    handle.seek(position)

    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise DataError("CSV file is empty") from None
    rows = [row for row in reader if row]
    for row in rows:
        if len(row) != len(header):
            raise DataError(
                f"row has {len(row)} fields, header has {len(header)}"
            )
    raw = {
        name: [row[index] for row in rows] for index, name in enumerate(header)
    }

    if schema is None:
        schema = _build_schema(header, raw, types_line, roles_line)
    data = {}
    for spec in schema:
        values = raw[spec.name]
        if spec.ctype is ColumnType.NUMERIC:
            data[spec.name] = [float(value) if value != "" else float("nan")
                               for value in values]
        else:
            data[spec.name] = values
    return Table(schema, data)


def _build_schema(header: list[str], raw: dict[str, list[str]],
                  types_line: str | None, roles_line: str | None) -> Schema:
    if types_line is not None:
        ctypes = [ColumnType(value) for value in types_line.split(",")]
    else:
        ctypes = [_infer_csv_type(raw[name]) for name in header]
    if roles_line is not None:
        roles = [ColumnRole(value) for value in roles_line.split(",")]
    else:
        roles = [ColumnRole.FEATURE] * len(header)
    if len(ctypes) != len(header) or len(roles) != len(header):
        raise DataError("metadata lines do not match header width")
    return Schema(
        [ColumnSpec(name, ctype, role)
         for name, ctype, role in zip(header, ctypes, roles)]
    )


def _infer_csv_type(values: list[str]) -> ColumnType:
    """Numeric if every non-empty cell parses as a float."""
    non_empty = [value for value in values if value != ""]
    if not non_empty:
        return ColumnType.CATEGORICAL
    try:
        for value in non_empty:
            float(value)
    except ValueError:
        return ColumnType.CATEGORICAL
    return _infer_ctype([float(value) for value in non_empty])
