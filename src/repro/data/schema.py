"""Column schemas with FACT-relevant role annotations.

The paper argues that responsibility must be designed in "already during
the requirements and design phases".  The schema is where that starts: a
column is not just a name and a dtype, it also carries a *role* that the
rest of the toolkit keys off — which attribute is legally sensitive, which
columns could serve as quasi-identifiers for a linkage attack, which one is
the decision target.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import SchemaError


class ColumnType(enum.Enum):
    """Storage/semantic type of a column."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


class ColumnRole(enum.Enum):
    """FACT role of a column inside a dataset.

    * ``FEATURE`` — ordinary model input.
    * ``TARGET`` — the decision / response variable.
    * ``SENSITIVE`` — protected attribute (fairness pillar); excluded from
      model inputs by default but required for audits.
    * ``IDENTIFIER`` — directly identifying (confidentiality pillar); never
      a model input, pseudonymised before sharing.
    * ``QUASI_IDENTIFIER`` — indirectly identifying in combination
      (k-anonymity, linkage attacks).
    * ``METADATA`` — carried along but ignored by models and audits.
    """

    FEATURE = "feature"
    TARGET = "target"
    SENSITIVE = "sensitive"
    IDENTIFIER = "identifier"
    QUASI_IDENTIFIER = "quasi_identifier"
    METADATA = "metadata"


@dataclass(frozen=True)
class ColumnSpec:
    """Declaration of a single column: name, type and FACT role."""

    name: str
    ctype: ColumnType = ColumnType.NUMERIC
    role: ColumnRole = ColumnRole.FEATURE
    description: str = ""

    def with_role(self, role: ColumnRole) -> "ColumnSpec":
        """Return a copy of this spec with a different role."""
        return ColumnSpec(self.name, self.ctype, role, self.description)


@dataclass
class Schema:
    """Ordered collection of :class:`ColumnSpec` for a table."""

    columns: list[ColumnSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.columns]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names: {sorted(duplicates)}")

    # -- lookup ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return any(spec.name == name for spec in self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __getitem__(self, name: str) -> ColumnSpec:
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise SchemaError(f"no column named {name!r}")

    @property
    def names(self) -> list[str]:
        """Column names in declaration order."""
        return [spec.name for spec in self.columns]

    def _names_with_role(self, role: ColumnRole) -> list[str]:
        return [spec.name for spec in self.columns if spec.role is role]

    @property
    def feature_names(self) -> list[str]:
        """Names of ordinary model-input columns."""
        return self._names_with_role(ColumnRole.FEATURE)

    @property
    def sensitive_names(self) -> list[str]:
        """Names of protected attributes."""
        return self._names_with_role(ColumnRole.SENSITIVE)

    @property
    def quasi_identifier_names(self) -> list[str]:
        """Names of quasi-identifying columns."""
        return self._names_with_role(ColumnRole.QUASI_IDENTIFIER)

    @property
    def identifier_names(self) -> list[str]:
        """Names of directly identifying columns."""
        return self._names_with_role(ColumnRole.IDENTIFIER)

    @property
    def target_name(self) -> str | None:
        """Name of the target column, or ``None`` if undeclared."""
        targets = self._names_with_role(ColumnRole.TARGET)
        if not targets:
            return None
        if len(targets) > 1:
            raise SchemaError(f"multiple target columns declared: {targets}")
        return targets[0]

    # -- derivation --------------------------------------------------------

    def select(self, names: list[str]) -> "Schema":
        """Schema restricted to ``names`` (in the given order)."""
        return Schema([self[name] for name in names])

    def drop(self, names: list[str]) -> "Schema":
        """Schema without the listed columns."""
        missing = [name for name in names if name not in self]
        if missing:
            raise SchemaError(f"cannot drop unknown columns: {missing}")
        dropped = set(names)
        return Schema([spec for spec in self.columns if spec.name not in dropped])

    def with_column(self, spec: ColumnSpec) -> "Schema":
        """Schema with an extra column appended (or replaced in place)."""
        if spec.name in self:
            return Schema(
                [spec if old.name == spec.name else old for old in self.columns]
            )
        return Schema([*self.columns, spec])

    def with_role(self, name: str, role: ColumnRole) -> "Schema":
        """Schema with one column's role changed."""
        return self.with_column(self[name].with_role(role))


def numeric(name: str, role: ColumnRole = ColumnRole.FEATURE,
            description: str = "") -> ColumnSpec:
    """Shorthand for a numeric :class:`ColumnSpec`."""
    return ColumnSpec(name, ColumnType.NUMERIC, role, description)


def categorical(name: str, role: ColumnRole = ColumnRole.FEATURE,
                description: str = "") -> ColumnSpec:
    """Shorthand for a categorical :class:`ColumnSpec`."""
    return ColumnSpec(name, ColumnType.CATEGORICAL, role, description)
