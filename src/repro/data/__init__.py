"""Dataset substrate: schema-annotated tables, I/O, splits, generators."""

from repro.data.io import read_csv, read_csv_string, write_csv
from repro.data.schema import (
    ColumnRole,
    ColumnSpec,
    ColumnType,
    Schema,
    categorical,
    numeric,
)
from repro.data.split import (
    bootstrap_indices,
    k_fold,
    k_fold_indices,
    three_way_split,
    train_test_split,
)
from repro.data.table import Table
from repro.data.partition import (
    MergeableMoments,
    MergeableQuantiles,
    PartitionedTable,
    merge_counts,
    partition,
)
from repro.data.impute import SimpleImputer

__all__ = [
    "MergeableMoments",
    "MergeableQuantiles",
    "PartitionedTable",
    "SimpleImputer",
    "ColumnRole",
    "ColumnSpec",
    "ColumnType",
    "Schema",
    "Table",
    "bootstrap_indices",
    "categorical",
    "k_fold",
    "k_fold_indices",
    "merge_counts",
    "numeric",
    "partition",
    "read_csv",
    "read_csv_string",
    "three_way_split",
    "train_test_split",
    "write_csv",
]
