"""Intersectional fairness (Q1 extension).

Group metrics on one attribute can certify a model that still harms an
*intersection* — e.g. fair by group and fair by age band, unfair for
older members of group B.  This module audits the full cross-product of
several sensitive/categorical attributes, reporting the worst cell and
worst pairwise gap with minimum-support filtering (tiny cells are noise,
the Q2 lesson applied inside Q1 again).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FairnessError


@dataclass(frozen=True)
class IntersectionalCell:
    """One intersection of attribute values with its outcome statistics."""

    values: tuple[tuple[str, str], ...]
    size: int
    selection_rate: float

    def describe(self) -> str:
        """Readable rendering, e.g. ``group=B & age_band=old``."""
        return " & ".join(f"{name}={value}" for name, value in self.values)


@dataclass(frozen=True)
class IntersectionalReport:
    """Audit across the cross-product of several attributes."""

    attributes: tuple[str, ...]
    cells: tuple[IntersectionalCell, ...]
    min_cell_size: int

    @property
    def worst_cell(self) -> IntersectionalCell:
        """The intersection with the lowest selection rate."""
        return min(self.cells, key=lambda cell: cell.selection_rate)

    @property
    def best_cell(self) -> IntersectionalCell:
        """The intersection with the highest selection rate."""
        return max(self.cells, key=lambda cell: cell.selection_rate)

    @property
    def max_gap(self) -> float:
        """Largest pairwise selection-rate gap across intersections."""
        return self.best_cell.selection_rate - self.worst_cell.selection_rate

    @property
    def disparate_impact_ratio(self) -> float:
        """min/max selection rate over the intersections."""
        top = self.best_cell.selection_rate
        if top == 0.0:
            return 1.0
        return self.worst_cell.selection_rate / top

    def render(self) -> str:
        """Readable intersectional summary."""
        lines = [
            f"intersectional audit over {list(self.attributes)} "
            f"({len(self.cells)} cells of >= {self.min_cell_size} people)"
        ]
        for cell in sorted(self.cells, key=lambda c: c.selection_rate):
            lines.append(
                f"  {cell.describe()}: selection {cell.selection_rate:.3f} "
                f"(n={cell.size})"
            )
        lines.append(
            f"  max gap {self.max_gap:.3f}, DI ratio "
            f"{self.disparate_impact_ratio:.3f}"
        )
        return "\n".join(lines)


def intersectional_audit(y_pred, attribute_values: dict[str, np.ndarray],
                         min_cell_size: int = 20) -> IntersectionalReport:
    """Audit decisions across the cross-product of attributes.

    ``attribute_values`` maps attribute name → aligned value array.
    Cells smaller than ``min_cell_size`` are excluded from the gap
    computation (but their existence is implicit in the cell count).
    """
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if len(attribute_values) < 1:
        raise FairnessError("need at least one attribute")
    names = tuple(sorted(attribute_values))
    arrays = {}
    for name in names:
        array = np.asarray(attribute_values[name])
        if array.shape != y_pred.shape:
            raise FairnessError(f"attribute {name!r} misaligned with predictions")
        arrays[name] = array

    cells: list[IntersectionalCell] = []

    def recurse(depth: int, mask: np.ndarray,
                chosen: tuple[tuple[str, str], ...]):
        if depth == len(names):
            size = int(mask.sum())
            if size >= min_cell_size:
                cells.append(IntersectionalCell(
                    values=chosen, size=size,
                    selection_rate=float(y_pred[mask].mean()),
                ))
            return
        name = names[depth]
        for value in np.unique(arrays[name][mask]) if mask.any() else []:
            recurse(depth + 1, mask & (arrays[name] == value),
                    (*chosen, (name, str(value))))

    recurse(0, np.ones(len(y_pred), dtype=bool), ())
    if len(cells) < 2:
        raise FairnessError(
            "fewer than two populated intersections; lower min_cell_size"
        )
    return IntersectionalReport(
        attributes=names, cells=tuple(cells), min_cell_size=min_cell_size
    )
