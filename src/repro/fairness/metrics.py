"""Group fairness metrics (Q1).

All metrics operate on three aligned arrays — true labels, predicted
labels (or scores), and group membership — and report both per-group
values and the worst-case disparity across groups.  Conventions:

* *difference* metrics are ``max(group values) - min(group values)``
  (0 is perfectly fair);
* *ratio* metrics are ``min / max`` (1 is perfectly fair; the US EEOC
  "four-fifths rule" flags ratios below 0.8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FairnessError
from repro.learn.metrics import ConfusionMatrix, confusion_matrix


def _check_inputs(y_pred, group, y_true=None):
    y_pred = np.asarray(y_pred, dtype=np.float64)
    group = np.asarray(group)
    if y_pred.shape != group.shape or y_pred.ndim != 1:
        raise FairnessError(
            f"predictions {y_pred.shape} and groups {group.shape} must be aligned 1-D arrays"
        )
    if len(y_pred) == 0:
        raise FairnessError("fairness metrics need at least one example")
    if y_true is not None:
        y_true = np.asarray(y_true, dtype=np.float64)
        if y_true.shape != y_pred.shape:
            raise FairnessError("y_true and y_pred must be aligned")
    groups = np.unique(group)
    if len(groups) < 2:
        raise FairnessError(
            f"need at least two groups, found {groups.tolist()}"
        )
    return y_pred, group, y_true, groups


@dataclass(frozen=True)
class GroupRates:
    """Per-group confusion-derived rates for one protected attribute."""

    groups: tuple
    confusions: dict[object, ConfusionMatrix]

    def per_group(self, attribute: str) -> dict[object, float]:
        """One confusion-matrix property per group."""
        return {
            group: getattr(cm, attribute)
            for group, cm in self.confusions.items()
        }

    def difference(self, attribute: str) -> float:
        """max - min of one rate across groups."""
        values = list(self.per_group(attribute).values())
        return float(max(values) - min(values))

    def ratio(self, attribute: str) -> float:
        """min / max of one rate across groups (1.0 when max is 0)."""
        values = list(self.per_group(attribute).values())
        top = max(values)
        if top == 0.0:
            return 1.0
        return float(min(values) / top)


def group_rates(y_true, y_pred, group) -> GroupRates:
    """Confusion matrices per group."""
    y_pred, group, y_true, groups = _check_inputs(y_pred, group, y_true)
    confusions = {}
    for value in groups:
        mask = group == value
        confusions[value] = confusion_matrix(y_true[mask], y_pred[mask])
    return GroupRates(tuple(groups.tolist()), confusions)


def selection_rates(y_pred, group) -> dict[object, float]:
    """Fraction predicted positive, per group."""
    y_pred, group, _, groups = _check_inputs(y_pred, group)
    return {
        value: float(np.mean(y_pred[group == value])) for value in groups
    }


def statistical_parity_difference(y_pred, group) -> float:
    """max - min selection rate across groups (a.k.a. demographic parity)."""
    rates = list(selection_rates(y_pred, group).values())
    return float(max(rates) - min(rates))


def disparate_impact_ratio(y_pred, group) -> float:
    """min/max selection-rate ratio; < 0.8 violates the four-fifths rule."""
    rates = list(selection_rates(y_pred, group).values())
    top = max(rates)
    if top == 0.0:
        return 1.0
    return float(min(rates) / top)


def equal_opportunity_difference(y_true, y_pred, group) -> float:
    """max - min true-positive rate across groups."""
    return group_rates(y_true, y_pred, group).difference("recall")


def equalized_odds_difference(y_true, y_pred, group) -> float:
    """Worst of the TPR gap and the FPR gap across groups."""
    rates = group_rates(y_true, y_pred, group)
    return float(max(
        rates.difference("recall"), rates.difference("false_positive_rate")
    ))


def predictive_parity_difference(y_true, y_pred, group) -> float:
    """max - min precision across groups."""
    return group_rates(y_true, y_pred, group).difference("precision")


def accuracy_difference(y_true, y_pred, group) -> float:
    """max - min accuracy across groups."""
    return group_rates(y_true, y_pred, group).difference("accuracy")


def group_calibration_gaps(y_true, probabilities, group,
                           n_bins: int = 10) -> dict[object, float]:
    """Expected calibration error within each group.

    A score calibrated overall can hide large within-group
    mis-calibration; with unequal base rates, within-group calibration and
    equalised odds cannot both hold (Kleinberg et al.) — the recidivism
    experiment demonstrates this tension.
    """
    from repro.learn.calibration import expected_calibration_error

    probabilities = np.asarray(probabilities, dtype=np.float64)
    _, group, y_true, groups = _check_inputs(probabilities, group, y_true)
    return {
        value: expected_calibration_error(
            y_true[group == value], probabilities[group == value], n_bins
        )
        for value in groups
    }


def base_rates(y_true, group) -> dict[object, float]:
    """Positive-label prevalence per group (the impossibility lever)."""
    y_true, group, _, groups = _check_inputs(y_true, group)
    return {
        value: float(np.mean(y_true[group == value])) for value in groups
    }


FOUR_FIFTHS = 0.8


def passes_four_fifths_rule(y_pred, group) -> bool:
    """True when the disparate-impact ratio is at least 0.8."""
    return disparate_impact_ratio(y_pred, group) >= FOUR_FIFTHS
