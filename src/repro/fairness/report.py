"""The fairness audit report: one object answering Q1 for a model.

Bundles every group metric, base rates, calibration gaps and the
four-fifths verdict for a (labels, scores, decisions, groups) tuple, plus
a table-level entry point for :class:`repro.learn.TableClassifier`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.table import Table
from repro.exceptions import FairnessError
from repro.fairness import metrics as fm
from repro.learn.table_model import TableClassifier
from repro.store import Artifact


@dataclass
class FairnessReport(Artifact):
    """Complete group-fairness audit for one set of decisions.

    An :class:`~repro.store.Artifact`: ``to_dict``/``to_json`` serialise
    every metric and ``fingerprint()`` mints the content hash.
    """

    sensitive: str
    groups: tuple
    selection_rates: dict[object, float]
    base_rates: dict[object, float]
    statistical_parity_difference: float
    disparate_impact_ratio: float
    equal_opportunity_difference: float
    equalized_odds_difference: float
    predictive_parity_difference: float
    accuracy_difference: float
    calibration_gaps: dict[object, float] = field(default_factory=dict)
    four_fifths_threshold: float = fm.FOUR_FIFTHS

    @property
    def passes_four_fifths(self) -> bool:
        """Verdict under the EEOC four-fifths rule."""
        return self.disparate_impact_ratio >= self.four_fifths_threshold

    def worst_metric(self) -> tuple[str, float]:
        """The difference metric with the largest violation."""
        candidates = {
            "statistical_parity_difference": self.statistical_parity_difference,
            "equal_opportunity_difference": self.equal_opportunity_difference,
            "equalized_odds_difference": self.equalized_odds_difference,
            "predictive_parity_difference": self.predictive_parity_difference,
            "accuracy_difference": self.accuracy_difference,
        }
        name = max(candidates, key=candidates.get)
        return name, candidates[name]

    def summary(self) -> dict[str, float]:
        """Scalar metrics as a plain dict (for the FACT scorecard)."""
        return {
            "statistical_parity_difference": self.statistical_parity_difference,
            "disparate_impact_ratio": self.disparate_impact_ratio,
            "equal_opportunity_difference": self.equal_opportunity_difference,
            "equalized_odds_difference": self.equalized_odds_difference,
            "predictive_parity_difference": self.predictive_parity_difference,
            "accuracy_difference": self.accuracy_difference,
        }

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"Fairness audit on sensitive attribute {self.sensitive!r}"]
        lines.append(f"  groups: {list(self.groups)}")
        for group in self.groups:
            lines.append(
                f"    {group}: selection={self.selection_rates[group]:.3f}"
                f" base_rate={self.base_rates[group]:.3f}"
                + (f" calibration_gap={self.calibration_gaps[group]:.3f}"
                   if group in self.calibration_gaps else "")
            )
        for name, value in self.summary().items():
            lines.append(f"  {name}: {value:.4f}")
        verdict = "PASS" if self.passes_four_fifths else "FAIL"
        lines.append(
            f"  four-fifths rule ({self.four_fifths_threshold:.0%}): {verdict}"
        )
        return "\n".join(lines)


def audit_decisions(y_true, y_pred, group, sensitive: str = "group",
                    probabilities=None) -> FairnessReport:
    """Audit pre-computed decisions (optionally with scores for calibration)."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    group = np.asarray(group)
    groups = tuple(np.unique(group).tolist())
    calibration = {}
    if probabilities is not None:
        try:
            calibration = fm.group_calibration_gaps(y_true, probabilities, group)
        except FairnessError:
            calibration = {}
    return FairnessReport(
        sensitive=sensitive,
        groups=groups,
        selection_rates=fm.selection_rates(y_pred, group),
        base_rates=fm.base_rates(y_true, group),
        statistical_parity_difference=fm.statistical_parity_difference(y_pred, group),
        disparate_impact_ratio=fm.disparate_impact_ratio(y_pred, group),
        equal_opportunity_difference=fm.equal_opportunity_difference(y_true, y_pred, group),
        equalized_odds_difference=fm.equalized_odds_difference(y_true, y_pred, group),
        predictive_parity_difference=fm.predictive_parity_difference(y_true, y_pred, group),
        accuracy_difference=fm.accuracy_difference(y_true, y_pred, group),
        calibration_gaps=calibration,
    )


def audit_model(model: TableClassifier, table: Table,
                sensitive: str | None = None,
                threshold: float | None = None) -> FairnessReport:
    """Audit a fitted table model on ``table``.

    The sensitive column is read from the table's schema (audits always
    see it, even though the model never did).  With several SENSITIVE
    columns declared, the first is audited here; cross them with
    :func:`repro.fairness.intersectional.intersectional_audit`.
    """
    names = table.schema.sensitive_names
    if sensitive is None and not names:
        raise FairnessError("table declares no sensitive column")
    name = sensitive or names[0]
    group = table.sensitive(name)
    probabilities = model.predict_proba(table)
    cutoff = model.threshold if threshold is None else threshold
    decisions = (probabilities >= cutoff).astype(np.float64)
    return audit_decisions(
        model.labels(table), decisions, group,
        sensitive=name, probabilities=probabilities,
    )
