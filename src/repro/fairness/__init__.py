"""Fairness pillar (Q1): metrics, discovery, and mitigation at every stage."""

from repro.fairness.discovery import (
    ProxyReport,
    Subgroup,
    correlation_ratio,
    cramers_v,
    detect_proxies,
    find_worst_subgroups,
)
from repro.fairness.individual import (
    SituationTestResult,
    consistency_score,
    situation_test,
)
from repro.fairness.inprocessing import (
    ExponentiatedGradientReducer,
    FairPenaltyLogisticRegression,
)
from repro.fairness.metrics import (
    FOUR_FIFTHS,
    GroupRates,
    accuracy_difference,
    base_rates,
    disparate_impact_ratio,
    equal_opportunity_difference,
    equalized_odds_difference,
    group_calibration_gaps,
    group_rates,
    passes_four_fifths_rule,
    predictive_parity_difference,
    selection_rates,
    statistical_parity_difference,
)
from repro.fairness.postprocessing import (
    GroupThresholdOptimizer,
    RejectOptionClassifier,
)
from repro.fairness.preprocessing import (
    disparate_impact_repair,
    massage,
    reweigh,
    reweighing_weights,
)
from repro.fairness.report import FairnessReport, audit_decisions, audit_model
from repro.fairness.intersectional import (
    IntersectionalCell,
    IntersectionalReport,
    intersectional_audit,
)
from repro.fairness.impossibility import (
    ImpossibilityAssessment,
    assess_impossibility,
    feasible_fairness_criteria,
    implied_false_positive_rate,
)

__all__ = [
    "implied_false_positive_rate",
    "feasible_fairness_criteria",
    "assess_impossibility",
    "ImpossibilityAssessment",
    "intersectional_audit",
    "IntersectionalReport",
    "IntersectionalCell",
    "FOUR_FIFTHS",
    "ExponentiatedGradientReducer",
    "FairPenaltyLogisticRegression",
    "FairnessReport",
    "GroupRates",
    "GroupThresholdOptimizer",
    "ProxyReport",
    "RejectOptionClassifier",
    "SituationTestResult",
    "Subgroup",
    "accuracy_difference",
    "audit_decisions",
    "audit_model",
    "base_rates",
    "consistency_score",
    "correlation_ratio",
    "cramers_v",
    "detect_proxies",
    "disparate_impact_ratio",
    "disparate_impact_repair",
    "equal_opportunity_difference",
    "equalized_odds_difference",
    "find_worst_subgroups",
    "group_calibration_gaps",
    "group_rates",
    "massage",
    "passes_four_fifths_rule",
    "predictive_parity_difference",
    "reweigh",
    "reweighing_weights",
    "selection_rates",
    "situation_test",
    "statistical_parity_difference",
]
