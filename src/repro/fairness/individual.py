"""Individual fairness: consistency and situation testing (Q1).

Group metrics can be satisfied while individuals are still treated
arbitrarily.  Two complementary checks:

* **consistency** — do similar people receive similar predictions?
  (Zemel et al.'s k-NN consistency score.)
* **situation testing** — for each member of the protected group, compare
  the decision rate among their nearest neighbours *within* the group to
  that among their nearest neighbours in the other group (Luong et al.);
  a large gap is individual-level evidence of discrimination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FairnessError
from repro.learn.neighbors import nearest_indices


def consistency_score(X, y_pred, k: int = 5) -> float:
    """1 minus the mean |prediction - neighbour predictions| over k-NN.

    1.0 means every point agrees with its neighbourhood; lower values
    indicate that similar individuals receive different outcomes.
    """
    X = np.asarray(X, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if len(X) != len(y_pred):
        raise FairnessError("X and y_pred must be aligned")
    if len(X) <= k:
        raise FairnessError(f"need more than k={k} rows")
    # k+1 then drop self-matches (each point is its own nearest neighbour).
    neighbours = nearest_indices(X, X, k + 1)[:, 1:]
    neighbour_mean = y_pred[neighbours].mean(axis=1)
    return float(1.0 - np.mean(np.abs(y_pred - neighbour_mean)))


@dataclass(frozen=True)
class SituationTestResult:
    """Outcome of situation testing for one protected group."""

    group: object
    n_tested: int
    n_flagged: int
    mean_gap: float
    threshold: float

    @property
    def flagged_fraction(self) -> float:
        """Share of tested individuals with evidence of discrimination."""
        return self.n_flagged / self.n_tested if self.n_tested else 0.0


def situation_test(X, y_pred, group, protected: object,
                   k: int = 7, threshold: float = 0.3) -> SituationTestResult:
    """k-NN situation testing for members of ``protected``.

    For each protected individual, compute the positive-decision rate
    among their ``k`` nearest protected neighbours and their ``k``
    nearest non-protected neighbours; flag the individual when the
    non-protected twins are favoured by more than ``threshold``.
    """
    X = np.asarray(X, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    group = np.asarray(group)
    if not (len(X) == len(y_pred) == len(group)):
        raise FairnessError("X, y_pred and group must be aligned")
    protected_mask = group == protected
    if not protected_mask.any():
        raise FairnessError(f"no rows in protected group {protected!r}")
    other_mask = ~protected_mask
    if other_mask.sum() < k or protected_mask.sum() <= k:
        raise FairnessError("not enough rows in one of the groups for k neighbours")

    protected_X = X[protected_mask]
    own_pool_X = protected_X
    other_pool_X = X[other_mask]
    own_pred = y_pred[protected_mask]
    other_pred = y_pred[other_mask]

    own_neighbours = nearest_indices(protected_X, own_pool_X, k + 1)[:, 1:]
    other_neighbours = nearest_indices(protected_X, other_pool_X, k)
    own_rate = own_pred[own_neighbours].mean(axis=1)
    other_rate = other_pred[other_neighbours].mean(axis=1)
    gaps = other_rate - own_rate
    flagged = gaps > threshold
    return SituationTestResult(
        group=protected,
        n_tested=int(protected_mask.sum()),
        n_flagged=int(flagged.sum()),
        mean_gap=float(gaps.mean()),
        threshold=threshold,
    )
