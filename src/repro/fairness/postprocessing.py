"""Post-processing fairness mitigation: adjust decisions, not models (Q1).

Operates purely on scores + groups, which makes it the only option when
the model is a vendor black box — directly relevant to the paper's
transparency worries.

* :class:`GroupThresholdOptimizer` — per-group decision thresholds chosen
  on held-out data to satisfy demographic parity or equal opportunity at
  the smallest accuracy cost (a practical cousin of Hardt et al. 2016).
* :class:`RejectOptionClassifier` — inside the low-confidence band around
  the decision boundary, resolve in favour of the protected group
  (Kamiran et al. 2012).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FairnessError, NotFittedError
from repro.learn.metrics import accuracy


class GroupThresholdOptimizer:
    """Pick per-group thresholds on validation scores.

    Parameters
    ----------
    objective:
        ``"demographic_parity"`` — equal selection rates; or
        ``"equal_opportunity"`` — equal true-positive rates.
    grid_size:
        Number of candidate target rates searched.
    """

    OBJECTIVES = ("demographic_parity", "equal_opportunity")

    def __init__(self, objective: str = "demographic_parity",
                 grid_size: int = 50):
        if objective not in self.OBJECTIVES:
            raise FairnessError(
                f"unknown objective {objective!r}; choose from {self.OBJECTIVES}"
            )
        self.objective = objective
        self.grid_size = grid_size
        self.thresholds_: dict[object, float] | None = None
        self.target_rate_: float | None = None

    def fit(self, scores, y_true, group) -> "GroupThresholdOptimizer":
        """Search target rates; keep the per-group thresholds maximising accuracy."""
        scores = np.asarray(scores, dtype=np.float64)
        y_true = np.asarray(y_true, dtype=np.float64)
        group = np.asarray(group)
        if not (len(scores) == len(y_true) == len(group)):
            raise FairnessError("scores, y_true and group must be aligned")
        groups = np.unique(group)
        if len(groups) < 2:
            raise FairnessError("need at least two groups")

        best: tuple[float, float, dict[object, float]] | None = None
        for target in np.linspace(0.02, 0.98, self.grid_size):
            thresholds: dict[object, float] = {}
            feasible = True
            for value in groups:
                mask = group == value
                if self.objective == "demographic_parity":
                    pool = scores[mask]
                else:
                    pool = scores[mask & (y_true == 1.0)]
                    if len(pool) == 0:
                        feasible = False
                        break
                thresholds[value] = float(np.quantile(pool, 1.0 - target))
            if not feasible:
                continue
            predictions = self._apply(scores, group, thresholds)
            score = accuracy(y_true, predictions)
            if best is None or score > best[0]:
                best = (score, float(target), thresholds)
        if best is None:
            raise FairnessError("no feasible thresholds found")
        _, self.target_rate_, self.thresholds_ = best
        return self

    @staticmethod
    def _apply(scores: np.ndarray, group: np.ndarray,
               thresholds: dict[object, float]) -> np.ndarray:
        predictions = np.zeros(len(scores), dtype=np.float64)
        for value, threshold in thresholds.items():
            mask = group == value
            predictions[mask] = (scores[mask] >= threshold).astype(np.float64)
        return predictions

    def predict(self, scores, group) -> np.ndarray:
        """Apply the fitted per-group thresholds to new scores."""
        if self.thresholds_ is None:
            raise NotFittedError("GroupThresholdOptimizer must be fit first")
        scores = np.asarray(scores, dtype=np.float64)
        group = np.asarray(group)
        unknown = set(np.unique(group).tolist()) - set(self.thresholds_)
        if unknown:
            raise FairnessError(f"unseen groups at predict time: {sorted(unknown)}")
        return self._apply(scores, group, self.thresholds_)


class RejectOptionClassifier:
    """Flip low-confidence decisions in favour of the protected group.

    For probabilities inside ``[0.5 - band, 0.5 + band]``, protected-group
    members are accepted and others rejected; outside the band the
    original decision stands.
    """

    def __init__(self, protected: object, band: float = 0.1):
        if not 0.0 < band <= 0.5:
            raise FairnessError(f"band must be in (0, 0.5], got {band}")
        self.protected = protected
        self.band = band

    def predict(self, probabilities, group) -> np.ndarray:
        """Apply the reject-option rule to probability scores."""
        probabilities = np.asarray(probabilities, dtype=np.float64)
        group = np.asarray(group)
        if probabilities.shape != group.shape:
            raise FairnessError("probabilities and group must be aligned")
        decisions = (probabilities >= 0.5).astype(np.float64)
        uncertain = np.abs(probabilities - 0.5) <= self.band
        protected_mask = group == self.protected
        decisions[uncertain & protected_mask] = 1.0
        decisions[uncertain & ~protected_mask] = 0.0
        return decisions
