"""In-processing fairness mitigation: constrain the learner itself (Q1).

* :class:`FairPenaltyLogisticRegression` — logistic regression whose loss
  carries a penalty on the covariance between group membership and the
  decision logits (in the spirit of Kamishima et al.'s prejudice remover
  and Zafar et al.'s covariance constraints).
* :class:`ExponentiatedGradientReducer` — the Agarwal et al. (2018)
  reduction: fair classification as a two-player game between a
  cost-sensitive learner and a multiplicative-weights constraint player.
  Supports demographic-parity and equalized-odds constraints with any
  weighted base classifier from :mod:`repro.learn`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from repro.data.synth.base import sigmoid
from repro.exceptions import ConvergenceError, DataError, FairnessError
from repro.learn.base import (
    Classifier,
    check_binary_labels,
    check_matrix,
    check_weights,
)


class FairPenaltyLogisticRegression(Classifier):
    """Logistic regression with a group-covariance fairness penalty.

    Minimises ``log-loss + l2/2·‖w‖² + fairness·n·cov(s, z)²`` where ``s``
    is centred group membership and ``z`` the logits.  ``fairness = 0``
    recovers plain logistic regression; large values force the logits to
    decorrelate from the group, driving statistical parity.

    The group vector is passed at ``fit`` time via ``group`` (0/1 encoded
    or any binary array), *not* as a model feature — the model never sees
    the attribute, only the constraint does.
    """

    def __init__(self, fairness: float = 1.0, l2: float = 1.0,
                 max_iter: int = 500, tol: float = 1e-6):
        if fairness < 0:
            raise DataError("fairness must be non-negative")
        self.fairness = fairness
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._group: np.ndarray | None = None

    def set_group(self, group) -> "FairPenaltyLogisticRegression":
        """Attach the protected-attribute vector used by the penalty."""
        group = np.asarray(group)
        values = np.unique(group)
        if len(values) != 2:
            raise FairnessError(
                f"penalty needs a binary group, got {values.tolist()}"
            )
        self._group = (group == values[1]).astype(np.float64)
        return self

    def fit(self, X, y, sample_weight=None,
            group=None) -> "FairPenaltyLogisticRegression":
        """Fit with the covariance penalty (group from ``set_group`` or kwarg)."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if group is not None:
            self.set_group(group)
        if self._group is None:
            raise FairnessError("call set_group (or pass group=) before fit")
        if len(self._group) != len(y):
            raise FairnessError("group vector must align with training rows")
        weights = check_weights(sample_weight, len(y))
        weights = weights / weights.mean()
        s_centred = self._group - self._group.mean()
        n = len(y)
        n_features = X.shape[1]

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            coef, intercept = theta[:n_features], theta[n_features]
            z = X @ coef + intercept
            p = sigmoid(z)
            eps = 1e-12
            loss = -np.sum(
                weights * (y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))
            )
            loss += 0.5 * self.l2 * coef @ coef
            covariance = float(s_centred @ z) / n
            loss += self.fairness * n * covariance**2
            residual = weights * (p - y)
            grad_coef = X.T @ residual + self.l2 * coef
            grad_intercept = float(residual.sum())
            cov_grad_coef = 2.0 * self.fairness * covariance * (X.T @ s_centred)
            grad_coef = grad_coef + cov_grad_coef
            # d cov / d intercept = mean(s_centred) = 0, no intercept term.
            return loss, np.append(grad_coef, grad_intercept)

        result = optimize.minimize(
            objective, np.zeros(n_features + 1), jac=True, method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        if not result.success and result.status != 1:
            raise ConvergenceError(
                f"fair logistic regression failed to converge: {result.message}"
            )
        self.coef_ = result.x[:n_features]
        self.intercept_ = float(result.x[n_features])
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        """P(y = 1 | x) via the fitted (fairness-penalised) logit."""
        self._require_fitted()
        return np.asarray(sigmoid(check_matrix(X) @ self.coef_ + self.intercept_))


@dataclass
class _Constraint:
    """One side of one moment constraint: ⟨weights, h⟩ - offset ≤ slack."""

    name: str
    member_weight: np.ndarray  # per-example coefficient on E[h·…]
    sign: float                # +1 or -1 side of the absolute value


class ExponentiatedGradientReducer(Classifier):
    """Agarwal et al.'s fair-classification reduction.

    Parameters
    ----------
    base:
        Weighted binary classifier factory (cloned each round).
    constraint:
        ``"demographic_parity"`` (selection rates equal across groups) or
        ``"equalized_odds"`` (TPR and FPR equal across groups).
    eps:
        Allowed constraint slack.
    eta:
        Multiplicative-weights learning rate.
    max_rounds:
        Game iterations; the final predictor uniformly randomises over
        the hypotheses found (here: averages their hard predictions).
    bound:
        L1 bound B on the dual multipliers.
    """

    CONSTRAINTS = ("demographic_parity", "equalized_odds")

    def __init__(self, base: Classifier,
                 constraint: str = "demographic_parity",
                 eps: float = 0.02, eta: float = 0.5,
                 max_rounds: int = 40, bound: float = 10.0,
                 burn_in_fraction: float = 0.5):
        if constraint not in self.CONSTRAINTS:
            raise FairnessError(
                f"unknown constraint {constraint!r}; choose from {self.CONSTRAINTS}"
            )
        if not 0.0 <= burn_in_fraction < 1.0:
            raise FairnessError("burn_in_fraction must be in [0, 1)")
        self.base = base
        self.constraint = constraint
        self.eps = eps
        self.eta = eta
        self.max_rounds = max_rounds
        self.bound = bound
        self.burn_in_fraction = burn_in_fraction
        self._hypotheses: list[Classifier] = []
        self._group: np.ndarray | None = None

    def set_group(self, group) -> "ExponentiatedGradientReducer":
        """Attach the protected-attribute vector used by the constraints."""
        self._group = np.asarray(group)
        return self

    def _build_constraints(self, y: np.ndarray,
                           group: np.ndarray) -> list[_Constraint]:
        n = len(y)
        constraints: list[_Constraint] = []
        if self.constraint == "demographic_parity":
            for value in np.unique(group):
                mask = group == value
                member = mask / mask.sum() - np.ones(n) / n
                for sign in (1.0, -1.0):
                    constraints.append(_Constraint(
                        name=f"dp[{value}]{'+' if sign > 0 else '-'}",
                        member_weight=sign * member, sign=sign,
                    ))
        else:  # equalized odds
            for label in (0.0, 1.0):
                label_mask = y == label
                if not label_mask.any():
                    continue
                for value in np.unique(group):
                    mask = label_mask & (group == value)
                    if not mask.any():
                        continue
                    member = mask / mask.sum() - label_mask / label_mask.sum()
                    kind = "tpr" if label == 1.0 else "fpr"
                    for sign in (1.0, -1.0):
                        constraints.append(_Constraint(
                            name=f"{kind}[{value}]{'+' if sign > 0 else '-'}",
                            member_weight=sign * member, sign=sign,
                        ))
        return constraints

    def fit(self, X, y, sample_weight=None,
            group=None) -> "ExponentiatedGradientReducer":
        """Run the constraint game and collect the hypothesis ensemble."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if group is not None:
            self.set_group(group)
        if self._group is None:
            raise FairnessError("call set_group (or pass group=) before fit")
        group_arr = self._group
        if len(group_arr) != len(y):
            raise FairnessError("group vector must align with training rows")
        base_weights = check_weights(sample_weight, len(y))
        base_weights = base_weights / base_weights.mean()
        n = len(y)
        constraints = self._build_constraints(y, group_arr)
        theta = np.zeros(len(constraints))
        self._hypotheses = []

        for _ in range(self.max_rounds):
            # Dual weights: lambda on the probability simplex scaled by B.
            exp_theta = np.exp(theta - theta.max())
            lam = self.bound * exp_theta / (1.0 + exp_theta.sum()) \
                if exp_theta.sum() > 0 else np.zeros_like(theta)
            # Per-example cost of predicting 1 (vs 0).
            cost = base_weights * (1.0 - 2.0 * y) / n
            for multiplier, constraint in zip(lam, constraints):
                cost = cost + multiplier * constraint.member_weight
            pseudo_labels = (cost < 0).astype(np.float64)
            pseudo_weights = np.abs(cost)
            if pseudo_weights.sum() <= 0 or len(np.unique(pseudo_labels)) < 2:
                # Degenerate best response: constant classifier; inject
                # tiny uniform weight so the base learner still fits.
                pseudo_weights = pseudo_weights + 1e-8
                if len(np.unique(pseudo_labels)) < 2:
                    self._hypotheses.append(
                        _ConstantClassifier(float(pseudo_labels[0]))
                    )
                    break
            hypothesis = self.base.clone()
            hypothesis.fit(X, pseudo_labels, sample_weight=pseudo_weights)
            self._hypotheses.append(hypothesis)
            # Constraint player: exponentiated gradient on the violations
            # of the *average* play so far.
            avg_pred = np.mean(
                [h.predict(X) for h in self._hypotheses], axis=0
            )
            violations = np.array([
                float(constraint.member_weight @ avg_pred) - self.eps
                for constraint in constraints
            ])
            theta += self.eta * violations
        if not self._hypotheses:
            raise ConvergenceError("reduction produced no hypotheses")
        self._mark_fitted()
        return self

    def _ensemble(self) -> list[Classifier]:
        """Hypotheses after the burn-in prefix.

        The game's early best responses are (nearly) unconstrained
        classifiers; averaging them back in would re-introduce the very
        disparity the duals spent their rounds correcting, so the final
        randomised classifier uses only the post-burn-in iterates.
        """
        skip = int(len(self._hypotheses) * self.burn_in_fraction)
        kept = self._hypotheses[skip:]
        return kept if kept else self._hypotheses

    def predict_proba(self, X) -> np.ndarray:
        """Mean hard prediction of the post-burn-in hypothesis ensemble."""
        self._require_fitted()
        X = check_matrix(X)
        return np.mean([h.predict(X) for h in self._ensemble()], axis=0)

    @property
    def n_hypotheses(self) -> int:
        """Size of the ensemble the game produced (before burn-in trim)."""
        self._require_fitted()
        return len(self._hypotheses)


class _ConstantClassifier(Classifier):
    """Always predicts one class (degenerate game best response)."""

    def __init__(self, value: float):
        self.value = value
        self._mark_fitted()

    def fit(self, X, y, sample_weight=None) -> "_ConstantClassifier":
        return self

    def predict_proba(self, X) -> np.ndarray:
        return np.full(len(np.asarray(X)), self.value)
