"""Pre-processing fairness mitigation: fix the data before training (Q1).

Three classics, all of which leave the learner untouched:

* **Reweighing** (Kamiran & Calders) — reweight examples so group and
  label become statistically independent.
* **Massaging** (Kamiran & Calders) — flip the labels of the most
  borderline examples until selection rates match, guided by a ranker.
* **Disparate-impact repair** (Feldman et al.) — move each group's
  feature distribution toward the common median distribution, with a
  repair level trading fairness against information content.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnType
from repro.data.table import Table
from repro.exceptions import FairnessError
from repro.learn.table_model import TableClassifier


def reweighing_weights(y_true, group) -> np.ndarray:
    """Kamiran-Calders weights: w(g, y) = P(g)·P(y) / P(g, y).

    Training with these weights makes the weighted empirical distribution
    satisfy independence between group and label, removing the incentive
    to use group (or its proxies) to predict the label.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    group = np.asarray(group)
    if y_true.shape != group.shape:
        raise FairnessError("y_true and group must be aligned")
    n = len(y_true)
    weights = np.empty(n, dtype=np.float64)
    for g in np.unique(group):
        for label in np.unique(y_true):
            mask = (group == g) & (y_true == label)
            joint = mask.sum() / n
            if joint == 0.0:
                continue
            marginal = ((group == g).sum() / n) * ((y_true == label).sum() / n)
            weights[mask] = marginal / joint
    return weights


def reweigh(table: Table, sensitive: str | None = None,
            target: str | None = None) -> np.ndarray:
    """Table-level convenience for :func:`reweighing_weights`."""
    group = table.sensitive(sensitive)
    name = target or table.target_name
    if name is None:
        raise FairnessError("no target column declared or named")
    return reweighing_weights(table.column(name), group)


def massage(table: Table, ranker: TableClassifier,
            sensitive: str | None = None,
            protected: object | None = None) -> Table:
    """Flip borderline labels until group selection rates are equal.

    A ranker (trained on the biased data) orders examples by estimated
    positive probability.  Promotions: the highest-ranked negatives of
    the protected group.  Demotions: the lowest-ranked positives of the
    favoured group.  Equal numbers of each, just enough to equalise the
    label rates — the minimal intervention with the least accuracy cost.
    """
    group = table.sensitive(sensitive)
    groups = np.unique(group)
    if len(groups) != 2:
        raise FairnessError(f"massaging expects two groups, got {groups.tolist()}")
    target = table.target_name
    if target is None:
        raise FairnessError("table declares no target column")
    labels = table.column(target).copy()

    rates = {g: labels[group == g].mean() for g in groups}
    if protected is None:
        protected = min(rates, key=rates.get)
    favoured = groups[0] if protected == groups[1] else groups[1]
    if rates[protected] >= rates[favoured]:
        return table  # nothing to repair

    scores = ranker.predict_proba(table)
    n_protected = int((group == protected).sum())
    n_favoured = int((group == favoured).sum())
    # Number of flips M that equalises rates:
    #   (pos_p + M)/n_p = (pos_f - M)/n_f
    pos_p = float(labels[group == protected].sum())
    pos_f = float(labels[group == favoured].sum())
    flips = (pos_f * n_protected - pos_p * n_favoured) / (n_protected + n_favoured)
    flips = int(round(flips))
    if flips <= 0:
        return table

    promote_pool = np.flatnonzero((group == protected) & (labels == 0.0))
    demote_pool = np.flatnonzero((group == favoured) & (labels == 1.0))
    flips = min(flips, len(promote_pool), len(demote_pool))
    promotions = promote_pool[np.argsort(-scores[promote_pool], kind="stable")][:flips]
    demotions = demote_pool[np.argsort(scores[demote_pool], kind="stable")][:flips]
    labels[promotions] = 1.0
    labels[demotions] = 0.0
    return table.with_column(table.schema[target], labels)


def disparate_impact_repair(table: Table, repair_level: float = 1.0,
                            sensitive: str | None = None,
                            columns: list[str] | None = None) -> Table:
    """Feldman et al. quantile repair of numeric features.

    Each group's values of each numeric feature are mapped toward the
    rank-matched *median distribution* across groups.  ``repair_level``
    interpolates between the original value (0) and the fully repaired
    value (1).  After full repair, no numeric feature can distinguish the
    groups by distribution — proxies are neutralised at the source.
    """
    if not 0.0 <= repair_level <= 1.0:
        raise FairnessError(f"repair_level must be in [0, 1], got {repair_level}")
    group = table.sensitive(sensitive)
    group_indices = {
        g: np.flatnonzero(group == g) for g in np.unique(group)
    }
    if columns is None:
        columns = [
            spec.name for spec in table.schema
            if spec.ctype is ColumnType.NUMERIC
            and spec.name in table.schema.feature_names
        ]
    repaired = table
    quantile_grid = np.linspace(0.0, 1.0, 101)
    for name in columns:
        values = table.column(name).astype(np.float64).copy()
        # Median distribution: at each quantile, the median across groups.
        per_group_quantiles = np.vstack([
            np.quantile(values[idx], quantile_grid)
            for idx in group_indices.values()
        ])
        median_quantiles = np.median(per_group_quantiles, axis=0)
        new_values = values.copy()
        for idx in group_indices.values():
            group_values = values[idx]
            ranks = _fractional_ranks(group_values)
            target = np.interp(ranks, quantile_grid, median_quantiles)
            new_values[idx] = (
                (1.0 - repair_level) * group_values + repair_level * target
            )
        repaired = repaired.with_column(table.schema[name], new_values)
    return repaired


def _fractional_ranks(values: np.ndarray) -> np.ndarray:
    """Mid-ranks scaled to [0, 1] (ties share a rank)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(len(values), dtype=np.float64)
    if len(values) > 1:
        ranks /= len(values) - 1
    else:
        ranks[:] = 0.5
    return ranks
