"""Discrimination discovery: proxies and worst-off subgroups (Q1).

§2-Q1: "Even if sensitive attributes are omitted, members of certain
groups may still be systematically rejected."  That only happens when
other columns *encode* the sensitive attribute.  Two detectors:

* **proxy detection** — how well can the sensitive attribute be predicted
  from each feature (and from all features jointly)?  An AUC near 1 means
  dropping the column was cosmetic.
* **subgroup discovery** — scan conjunctions of categorical conditions
  for the subgroup with the worst selection-rate shortfall, surfacing
  discrimination that group-level metrics average away.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.data.schema import ColumnRole, ColumnType
from repro.data.table import Table
from repro.exceptions import FairnessError
from repro.learn.linear import LogisticRegression
from repro.learn.preprocessing import FeatureEncoder
from repro.learn.metrics import roc_auc


def cramers_v(left: np.ndarray, right: np.ndarray) -> float:
    """Cramér's V association between two categorical arrays (0..1).

    The chi-squared statistic of the contingency table, normalised to
    ``[0, 1]`` — 0 means independent, 1 means one attribute determines
    the other.  Used by :func:`repro.relational.proxy_scan` to measure
    how strongly a post-join column re-encodes a sensitive attribute.
    """
    left = np.asarray(left)
    right = np.asarray(right)
    if len(left) != len(right):
        raise FairnessError("cramers_v needs aligned arrays")
    n = len(left)
    if n == 0:
        return 0.0
    left_levels, left_codes = np.unique(left, return_inverse=True)
    right_levels, right_codes = np.unique(right, return_inverse=True)
    r, c = len(left_levels), len(right_levels)
    if r < 2 or c < 2:
        return 0.0
    observed = np.zeros((r, c), dtype=np.float64)
    np.add.at(observed, (left_codes, right_codes), 1.0)
    expected = np.outer(observed.sum(axis=1), observed.sum(axis=0)) / n
    with np.errstate(divide="ignore", invalid="ignore"):
        cells = np.where(expected > 0,
                         (observed - expected) ** 2 / expected, 0.0)
    chi2 = float(cells.sum())
    denominator = n * min(r - 1, c - 1)
    return float(np.sqrt(chi2 / denominator)) if denominator else 0.0


def correlation_ratio(values: np.ndarray, groups: np.ndarray) -> float:
    """Correlation ratio η of a numeric array across groups (0..1).

    ``sqrt(between-group variance / total variance)`` — how much of the
    numeric column's spread the group labels explain.  NaN values are
    dropped pairwise.
    """
    values = np.asarray(values, dtype=np.float64)
    groups = np.asarray(groups)
    if len(values) != len(groups):
        raise FairnessError("correlation_ratio needs aligned arrays")
    keep = ~np.isnan(values)
    values, groups = values[keep], groups[keep]
    if len(values) == 0:
        return 0.0
    total = float(np.sum((values - values.mean()) ** 2))
    if total == 0.0:
        return 0.0
    between = 0.0
    for level in np.unique(groups):
        members = values[groups == level]
        between += len(members) * (float(members.mean()) - float(values.mean())) ** 2
    return float(np.sqrt(between / total))


@dataclass(frozen=True)
class ProxyReport:
    """How strongly the features re-encode a sensitive attribute."""

    sensitive: str
    joint_auc: float
    per_feature_auc: dict[str, float]

    def strongest(self, top: int = 3) -> list[tuple[str, float]]:
        """The ``top`` most proxy-like features."""
        ranked = sorted(
            self.per_feature_auc.items(), key=lambda item: item[1], reverse=True
        )
        return ranked[:top]


def detect_proxies(table: Table, sensitive: str | None = None,
                   l2: float = 1.0) -> ProxyReport:
    """Fit sensitive-attribute predictors from the FEATURE columns.

    Returns in-sample AUCs: joint (all features) and per single feature.
    In-sample is the right notion here — the question is how much signal
    the *training* features carry, not out-of-sample generalisation.
    """
    sensitive_names = table.schema.sensitive_names
    if sensitive is None:
        if len(sensitive_names) != 1:
            raise FairnessError(
                f"name the sensitive column explicitly; found {sensitive_names}"
            )
        sensitive = sensitive_names[0]
    values = table.column(sensitive)
    groups = np.unique(values)
    if len(groups) != 2:
        raise FairnessError(
            f"proxy detection expects a binary sensitive attribute, got {groups.tolist()}"
        )
    target = (values == groups[1]).astype(np.float64)
    feature_names = table.schema.feature_names
    if not feature_names:
        raise FairnessError("table has no FEATURE columns")

    def auc_for(columns: list[str]) -> float:
        encoder = FeatureEncoder(columns=columns)
        X = encoder.fit_transform(table)
        model = LogisticRegression(l2=l2).fit(X, target)
        return roc_auc(target, model.predict_proba(X))

    joint = auc_for(feature_names)
    per_feature = {name: auc_for([name]) for name in feature_names}
    return ProxyReport(sensitive=sensitive, joint_auc=joint,
                       per_feature_auc=per_feature)


@dataclass(frozen=True)
class Subgroup:
    """A conjunction of categorical conditions and its outcome statistics."""

    conditions: tuple[tuple[str, str], ...]
    size: int
    selection_rate: float
    overall_rate: float

    @property
    def shortfall(self) -> float:
        """overall selection rate minus the subgroup's (positive = worse off)."""
        return self.overall_rate - self.selection_rate

    def describe(self) -> str:
        """Human-readable rendering of the conjunction."""
        if not self.conditions:
            return "everyone"
        return " and ".join(f"{name}={value}" for name, value in self.conditions)


def find_worst_subgroups(table: Table, y_pred, max_conditions: int = 2,
                         min_size: int = 30, top: int = 5,
                         columns: list[str] | None = None) -> list[Subgroup]:
    """Scan categorical conjunctions for the largest selection shortfalls.

    Only categorical FEATURE/SENSITIVE/QUASI_IDENTIFIER columns take part.
    Exhaustive over conjunctions of up to ``max_conditions`` conditions;
    subgroups smaller than ``min_size`` are skipped (tiny groups make any
    rate look extreme — a Q2 lesson applied inside Q1).
    """
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if len(y_pred) != table.n_rows:
        raise FairnessError("y_pred must align with the table")
    if columns is None:
        allowed_roles = (
            ColumnRole.FEATURE, ColumnRole.SENSITIVE, ColumnRole.QUASI_IDENTIFIER
        )
        columns = [
            spec.name for spec in table.schema
            if spec.ctype is ColumnType.CATEGORICAL and spec.role in allowed_roles
        ]
    if not columns:
        raise FairnessError("no categorical columns to scan")
    overall = float(np.mean(y_pred))
    results: list[Subgroup] = []
    for n_conditions in range(1, max_conditions + 1):
        for combo in itertools.combinations(columns, n_conditions):
            level_sets = [np.unique(table.column(name)) for name in combo]
            for levels in itertools.product(*level_sets):
                mask = np.ones(table.n_rows, dtype=bool)
                for name, level in zip(combo, levels):
                    mask &= table.column(name) == level
                size = int(mask.sum())
                if size < min_size:
                    continue
                rate = float(np.mean(y_pred[mask]))
                results.append(Subgroup(
                    conditions=tuple(zip(combo, (str(level) for level in levels))),
                    size=size, selection_rate=rate, overall_rate=overall,
                ))
    results.sort(key=lambda subgroup: subgroup.shortfall, reverse=True)
    return results[:top]
