"""The calibration / error-rate impossibility, made computable (Q1 × Q2).

Kleinberg-Mullainathan-Raghavan and Chouldechova proved the tension the
recidivism debates ran into: when base rates differ across groups, a
(non-trivial) score cannot simultaneously be calibrated within groups
and equalise false-positive and false-negative rates.  The paper's Q1
asks "how to avoid unfair conclusions even if they are true" — this
module quantifies which fairness definitions are *jointly achievable* on
a given dataset, so a policy can demand a feasible combination.

Core identity (Chouldechova 2017), for each group with base rate p,
positive predictive value PPV, false-positive rate FPR and false-negative
rate FNR::

    FPR = p / (1 - p) * (1 - PPV) / PPV * (1 - FNR)

Equal PPV and equal FNR across groups with different p therefore force
different FPRs — and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FairnessError


def implied_false_positive_rate(base_rate: float, ppv: float,
                                fnr: float) -> float:
    """The FPR forced by (base rate, PPV, FNR) via Chouldechova's identity."""
    if not 0.0 < base_rate < 1.0:
        raise FairnessError("base_rate must be in (0, 1)")
    if not 0.0 < ppv <= 1.0:
        raise FairnessError("ppv must be in (0, 1]")
    if not 0.0 <= fnr < 1.0:
        raise FairnessError("fnr must be in [0, 1)")
    return (base_rate / (1.0 - base_rate)) * ((1.0 - ppv) / ppv) * (1.0 - fnr)


@dataclass(frozen=True)
class ImpossibilityAssessment:
    """How much error-rate disparity equal calibration *forces* here."""

    base_rates: dict[object, float]
    target_ppv: float
    target_fnr: float
    implied_fpr: dict[object, float]

    @property
    def forced_fpr_gap(self) -> float:
        """The FPR difference no equally-calibrated score can avoid."""
        values = list(self.implied_fpr.values())
        return float(max(values) - min(values))

    @property
    def base_rate_gap(self) -> float:
        """The base-rate difference driving the impossibility."""
        values = list(self.base_rates.values())
        return float(max(values) - min(values))

    def render(self) -> str:
        """Readable statement of the forced trade-off."""
        lines = [
            "impossibility assessment (equal PPV "
            f"{self.target_ppv:.2f} and equal FNR {self.target_fnr:.2f} "
            "across groups):"
        ]
        for group, rate in self.base_rates.items():
            lines.append(
                f"  {group}: base rate {rate:.3f} -> implied FPR "
                f"{self.implied_fpr[group]:.3f}"
            )
        lines.append(
            f"  forced FPR gap: {self.forced_fpr_gap:.3f} "
            "(no calibrated score can do better while base rates differ)"
        )
        return "\n".join(lines)


def assess_impossibility(y_true, group, target_ppv: float = 0.7,
                         target_fnr: float = 0.3) -> ImpossibilityAssessment:
    """Quantify the error-rate gap equal calibration would force.

    Reads the groups' base rates from the data and applies the identity
    at the requested operating point.  A ``forced_fpr_gap`` of 0.715
    means: *any* score with equal PPV and FNR across these groups must
    have FPRs 0.715 apart — before a single modelling decision is made.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    group = np.asarray(group)
    if y_true.shape != group.shape:
        raise FairnessError("y_true and group must be aligned")
    groups = np.unique(group)
    if len(groups) < 2:
        raise FairnessError("need at least two groups")
    base_rates = {}
    implied = {}
    for value in groups:
        rate = float(np.mean(y_true[group == value]))
        if not 0.0 < rate < 1.0:
            raise FairnessError(
                f"group {value!r} has a degenerate base rate of {rate}"
            )
        base_rates[value] = rate
        implied[value] = implied_false_positive_rate(
            rate, target_ppv, target_fnr
        )
    return ImpossibilityAssessment(
        base_rates=base_rates, target_ppv=target_ppv,
        target_fnr=target_fnr, implied_fpr=implied,
    )


def feasible_fairness_criteria(y_true, group,
                               tolerance: float = 0.02) -> dict[str, bool]:
    """Which standard criteria can jointly hold on this data?

    With (near-)equal base rates everything is jointly feasible; once
    they diverge, {calibration, equalized odds} become mutually
    exclusive.  Demographic parity is always *achievable* (trivially, by
    group-dependent randomisation) but conflicts with calibration when
    base rates differ.
    """
    assessment = assess_impossibility(y_true, group)
    equal_base_rates = assessment.base_rate_gap <= tolerance
    return {
        "equal_base_rates": equal_base_rates,
        "calibration_and_equalized_odds": equal_base_rates,
        "calibration_and_demographic_parity": equal_base_rates,
        "demographic_parity_alone": True,
        "equalized_odds_alone": True,
        "calibration_alone": True,
    }
