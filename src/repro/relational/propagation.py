"""FACT role propagation across joins, and the post-join proxy scan.

§2-Q1 warns that "even if sensitive attributes are omitted, members of
certain groups may still be systematically rejected" — and a *join* is
the canonical way that happens in practice: the single table was
redacted, but linking it to another table pulls a sensitive attribute
(or a proxy for one) back in.  Two defences live here:

* **role propagation** — a joined column inherits the *strictest* FACT
  role of its lineage.  A column that is SENSITIVE anywhere is SENSITIVE
  in every join output; a key column that links rows one-to-many gains
  linkage power and is promoted to QUASI_IDENTIFIER even if both sides
  declared it benign.
* **proxy scan** — a measurement pass over a (typically joined) table:
  how strongly does each column associate with each sensitive attribute
  (Cramér's V for categoricals, the correlation ratio η for numerics)?
  Columns above the threshold are flagged with a suggested
  QUASI_IDENTIFIER promotion, which
  :meth:`~repro.data.table.Table.feature_table` then excludes from
  model inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.schema import ColumnRole, ColumnSpec, ColumnType
from repro.data.table import Table
from repro.fairness.discovery import correlation_ratio, cramers_v
from repro.exceptions import FairnessError

#: The strictness lattice: a joined column takes the maximum.
ROLE_STRICTNESS: dict[ColumnRole, int] = {
    ColumnRole.METADATA: 0,
    ColumnRole.FEATURE: 1,
    ColumnRole.TARGET: 2,
    ColumnRole.QUASI_IDENTIFIER: 3,
    ColumnRole.SENSITIVE: 4,
    ColumnRole.IDENTIFIER: 5,
}

#: Default association threshold above which a column is flagged.
PROXY_THRESHOLD = 0.3


def strictest_role(*roles: ColumnRole) -> ColumnRole:
    """The strictest of the given FACT roles (max of the lattice)."""
    if not roles:
        raise FairnessError("strictest_role needs at least one role")
    return max(roles, key=lambda role: ROLE_STRICTNESS[role])


def propagate_key_role(spec: ColumnSpec, left_role: ColumnRole,
                       right_role: ColumnRole,
                       fan_out: bool) -> ColumnSpec:
    """The output spec of a join-key column.

    The key exists on both sides, so it takes the strictest of the two
    declared roles; when the join fanned rows out (some key value
    matched more than one row), the key demonstrably links records
    across tables and a benign role (FEATURE/METADATA) is promoted to
    QUASI_IDENTIFIER — that linkage power is exactly what a
    quasi-identifier is.  TARGET and stricter roles are left alone.
    """
    role = strictest_role(left_role, right_role)
    if fan_out and ROLE_STRICTNESS[role] < ROLE_STRICTNESS[ColumnRole.TARGET]:
        role = ColumnRole.QUASI_IDENTIFIER
    return spec.with_role(role)


@dataclass(frozen=True)
class ProxyFinding:
    """One column's measured association with one sensitive attribute."""

    column: str
    sensitive: str
    association: float      # Cramér's V or correlation ratio, in [0, 1]
    measure: str            # "cramers_v" | "correlation_ratio"
    role: ColumnRole        # the column's current role

    def render(self) -> str:
        """Human-readable one-liner."""
        return (f"{self.column} ~ {self.sensitive}: "
                f"{self.measure}={self.association:.3f} "
                f"(role={self.role.value})")


@dataclass(frozen=True)
class ProxyScanReport:
    """Every measured association, plus the flagged subset."""

    subject: str
    threshold: float
    findings: tuple[ProxyFinding, ...]

    @property
    def flagged(self) -> tuple[ProxyFinding, ...]:
        """Findings at or above the threshold, strongest first."""
        hot = [f for f in self.findings if f.association >= self.threshold]
        return tuple(sorted(hot, key=lambda f: -f.association))

    @property
    def passed(self) -> bool:
        """True when nothing crossed the threshold."""
        return not self.flagged

    def apply(self, table: Table) -> Table:
        """``table`` with every flagged column promoted to QUASI_IDENTIFIER.

        Promotion is the mitigation: ``feature_table()`` no longer feeds
        the column to models, while audits still see it.  Columns whose
        role is already stricter than QUASI_IDENTIFIER are untouched.
        """
        promoted = table
        for finding in self.flagged:
            current = promoted.schema[finding.column].role
            if (ROLE_STRICTNESS[current]
                    < ROLE_STRICTNESS[ColumnRole.QUASI_IDENTIFIER]):
                promoted = promoted.with_role(
                    finding.column, ColumnRole.QUASI_IDENTIFIER
                )
        return promoted

    def render(self) -> str:
        """The scan as text, flagged findings first."""
        lines = [
            f"proxy scan of {self.subject}: "
            f"{len(self.flagged)} flagged at threshold "
            f"{self.threshold:.2f} ({len(self.findings)} measured)"
        ]
        for finding in self.flagged:
            lines.append(f"  FLAG {finding.render()}")
        for finding in self.findings:
            if finding not in self.flagged:
                lines.append(f"       {finding.render()}")
        return "\n".join(lines)


#: Roles a proxy scan measures (the ones that may reach a model).
_SCANNED_ROLES = (
    ColumnRole.FEATURE, ColumnRole.METADATA, ColumnRole.QUASI_IDENTIFIER,
)


def proxy_scan(table: Table, sensitive: str | list[str] | None = None,
               threshold: float = PROXY_THRESHOLD,
               subject: str = "table") -> ProxyScanReport:
    """Measure how strongly each column re-encodes a sensitive attribute.

    Every FEATURE/METADATA/QUASI_IDENTIFIER column is scored against
    every sensitive column: categorical columns with Cramér's V, numeric
    columns with the correlation ratio η.  Run this on *join outputs* —
    a column that was independent of the sensitive attribute in its home
    table can become a strong proxy once rows are linked.
    """
    if sensitive is None:
        names = table.schema.sensitive_names
    elif isinstance(sensitive, str):
        names = [sensitive]
    else:
        names = list(sensitive)
    if not names:
        raise FairnessError(
            "proxy_scan needs at least one sensitive column "
            "(declare roles or pass sensitive=...)"
        )
    for name in names:
        if name not in table.schema:
            raise FairnessError(f"no column named {name!r} to scan against")
    findings = []
    for spec in table.schema:
        if spec.role not in _SCANNED_ROLES or spec.name in names:
            continue
        for target in names:
            target_values = table.column(target)
            if spec.ctype is ColumnType.NUMERIC:
                value = correlation_ratio(table.column(spec.name),
                                          target_values)
                measure = "correlation_ratio"
            else:
                value = cramers_v(table.column(spec.name), target_values)
                measure = "cramers_v"
            findings.append(ProxyFinding(
                column=spec.name, sensitive=target,
                association=round(float(value), 6),
                measure=measure, role=spec.role,
            ))
    return ProxyScanReport(
        subject=subject, threshold=float(threshold),
        findings=tuple(findings),
    )
