"""``repro.relational`` — schema-driven multi-table data with FACT-aware joins.

Real responsible-data-science scenarios are relational: applications
reference applicants, applicants live in zones, outcomes land in a
separate table.  §2-Q1 of the paper warns that omitting a sensitive
attribute from one table proves nothing — and a *join* is precisely the
operation that re-introduces what redaction removed.  This package makes
the relationships first-class so the FACT machinery can see them:

* :class:`RelSchema` / :class:`TableSpec` / :class:`ForeignKey` declare
  related tables with typed links, validated at construction (dangling
  references, type mismatches, ownership cycles → ``SchemaError``), with
  versioned migrations (:mod:`repro.relational.migrate`) folded into the
  dataset fingerprint;
* :class:`Dataset` holds the member tables, enforces key uniqueness and
  referential integrity, and content-fingerprints the whole collection;
* :func:`inner_join` / :func:`left_join` / :func:`group_aggregate` are
  deterministic, order-stable numpy kernels whose outputs *derive* their
  FACT roles — a joined column inherits the strictest role of its
  lineage, and a fanned-out key is promoted to quasi-identifier
  (:mod:`repro.relational.propagation`);
* :func:`proxy_scan` measures post-join association between derived
  columns and sensitive attributes, catching proxies that single-table
  audits miss;
* :func:`join_node` / :func:`aggregate_node` run the kernels as engine
  nodes — memoised, tagged ``table:<fp>``, bit-identical at any
  ``n_jobs``;
* :class:`SchemaRegistry` backs :class:`repro.serve.QueryPlanner` with
  whole-dataset registration and store-tag invalidation on re-register.
"""

from repro.relational.dataset import Dataset
from repro.relational.kernels import (
    AGGREGATE_OPS,
    MISSING_CATEGORICAL,
    group_aggregate,
    inner_join,
    left_join,
)
from repro.relational.migrate import (
    MIGRATION_OPS,
    AddColumn,
    AddTable,
    RenameColumn,
)
from repro.relational.nodes import aggregate_node, join_node
from repro.relational.propagation import (
    PROXY_THRESHOLD,
    ROLE_STRICTNESS,
    ProxyFinding,
    ProxyScanReport,
    propagate_key_role,
    proxy_scan,
    strictest_role,
)
from repro.relational.registry import SchemaRegistry
from repro.relational.schema import ForeignKey, RelSchema, TableSpec

__all__ = [
    "AGGREGATE_OPS",
    "AddColumn",
    "AddTable",
    "Dataset",
    "ForeignKey",
    "MIGRATION_OPS",
    "MISSING_CATEGORICAL",
    "PROXY_THRESHOLD",
    "ProxyFinding",
    "ProxyScanReport",
    "ROLE_STRICTNESS",
    "RelSchema",
    "RenameColumn",
    "SchemaRegistry",
    "TableSpec",
    "aggregate_node",
    "group_aggregate",
    "inner_join",
    "join_node",
    "left_join",
    "propagate_key_role",
    "proxy_scan",
    "strictest_role",
]
