"""Versioned schema migrations: structural change as recorded lineage.

A responsible dataset's identity includes *how it came to look the way
it does* — §5 of the paper folds data-lineage management into the FACT
agenda.  A migration op is a small declarative object applied through
:meth:`repro.relational.Dataset.migrate`; each ``migrate`` call bumps
the schema version and appends the ops' log entries to
:attr:`RelSchema.migrations`, and both fold into the dataset
fingerprint — two datasets with identical bytes but different
structural histories hash differently, on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import ColumnSpec, ColumnType, Schema
from repro.data.table import Table
from repro.exceptions import SchemaError
from repro.relational.schema import ForeignKey, TableSpec


def _replace_spec(specs: list[TableSpec], name: str,
                  replacement: TableSpec) -> list[TableSpec]:
    return [replacement if spec.name == name else spec for spec in specs]


def _require_table(specs: list[TableSpec], name: str, op: str) -> TableSpec:
    for spec in specs:
        if spec.name == name:
            return spec
    raise SchemaError(
        f"{op}: no table named {name!r}; members: "
        f"{[spec.name for spec in specs]}"
    )


@dataclass(frozen=True)
class AddColumn:
    """Add ``spec`` to table ``table``, filled with ``default``.

    ``default`` defaults per type: 0.0 for numeric, ``""`` for
    categorical.  (Real values arrive through ordinary Table transforms
    afterwards; the migration records the structural fact.)
    """

    table: str
    spec: ColumnSpec
    default: float | str | None = None

    def entry(self) -> dict:
        return {
            "op": "add_column", "table": self.table,
            "column": self.spec.name, "ctype": self.spec.ctype.value,
            "role": self.spec.role.value,
        }

    def apply(self, specs: list[TableSpec],
              tables: dict[str, Table]) -> tuple[list, dict]:
        target = _require_table(specs, self.table, "add_column")
        if self.spec.name in target.schema:
            raise SchemaError(
                f"add_column: table {self.table!r} already has a column "
                f"{self.spec.name!r}"
            )
        default = self.default
        if default is None:
            default = 0.0 if self.spec.ctype is ColumnType.NUMERIC else ""
        table = tables[self.table]
        values = np.full(
            table.n_rows, default,
            dtype=(np.float64 if self.spec.ctype is ColumnType.NUMERIC
                   else object),
        )
        updated = TableSpec(
            name=target.name,
            schema=target.schema.with_column(self.spec),
            key=target.key,
            foreign_keys=target.foreign_keys,
        )
        tables = {**tables, self.table: table.with_column(self.spec, values)}
        return _replace_spec(specs, self.table, updated), tables


@dataclass(frozen=True)
class RenameColumn:
    """Rename ``old`` to ``new`` in table ``table``, rewriting every
    foreign key that mentions the column (on either end of the link)."""

    table: str
    old: str
    new: str

    def entry(self) -> dict:
        return {
            "op": "rename", "table": self.table,
            "old": self.old, "new": self.new,
        }

    def apply(self, specs: list[TableSpec],
              tables: dict[str, Table]) -> tuple[list, dict]:
        target = _require_table(specs, self.table, "rename")
        if self.old not in target.schema:
            raise SchemaError(
                f"rename: table {self.table!r} has no column {self.old!r}"
            )
        if self.new in target.schema:
            raise SchemaError(
                f"rename: table {self.table!r} already has a column "
                f"{self.new!r}"
            )
        updated_specs = []
        for spec in specs:
            schema = spec.schema
            key = spec.key
            if spec.name == self.table:
                schema = Schema([
                    (ColumnSpec(self.new, col.ctype, col.role,
                                col.description)
                     if col.name == self.old else col)
                    for col in schema
                ])
                if key == self.old:
                    key = self.new
            foreign_keys = tuple(
                ForeignKey(
                    column=(self.new if spec.name == self.table
                            and fk.column == self.old else fk.column),
                    references_table=fk.references_table,
                    references_column=(
                        self.new if fk.references_table == self.table
                        and fk.references_column == self.old
                        else fk.references_column
                    ),
                )
                for fk in spec.foreign_keys
            )
            updated_specs.append(TableSpec(
                name=spec.name, schema=schema, key=key,
                foreign_keys=foreign_keys,
            ))
        tables = {
            **tables,
            self.table: tables[self.table].rename({self.old: self.new}),
        }
        return updated_specs, tables


@dataclass(frozen=True)
class AddTable:
    """Add a new member table (declaration plus rows)."""

    spec: TableSpec
    table: Table

    def entry(self) -> dict:
        return {"op": "add_table", "table": self.spec.name}

    def apply(self, specs: list[TableSpec],
              tables: dict[str, Table]) -> tuple[list, dict]:
        if any(spec.name == self.spec.name for spec in specs):
            raise SchemaError(
                f"add_table: a table named {self.spec.name!r} already exists"
            )
        return [*specs, self.spec], {**tables, self.spec.name: self.table}


#: Every op understood by :meth:`repro.relational.Dataset.migrate`.
MIGRATION_OPS = (AddColumn, RenameColumn, AddTable)
