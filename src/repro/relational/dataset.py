"""``Dataset``: related tables validated against a :class:`RelSchema`.

The container pairs a declared :class:`~repro.relational.RelSchema`
with the actual member :class:`~repro.data.table.Table` rows and
enforces, at construction time, that the two agree — every declared
table present, columns matching the declaration, primary keys unique
and non-missing, and every foreign-key value resolvable in its parent
table.  Because validation lives in ``__post_init__`` and ``Dataset``
is an ordinary repro dataclass, a dataset decoded from the artifact
store re-validates itself on the way out: a corrupted cache entry
raises instead of flowing downstream.

Identity is content-addressed like everything else in the toolkit:
:meth:`Dataset.content_fingerprint` composes the schema identity
(declarations, version, migration log) with every member table's
full-content hash, so engine nodes taking a ``Dataset`` input memoize
correctly and a one-row change in one member table invalidates exactly
the computations that read the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.schema import ColumnType
from repro.data.table import Table
from repro.exceptions import DataError, SchemaError
from repro.relational.kernels import (
    MISSING_CATEGORICAL,
    inner_join,
    left_join,
)
from repro.relational.schema import RelSchema, TableSpec
from repro.store.fingerprint import dataset_fingerprint


def _missing_mask(values: np.ndarray) -> np.ndarray:
    if values.dtype == object:
        return values == MISSING_CATEGORICAL
    return np.isnan(values)


@dataclass
class Dataset:
    """Related tables plus the schema that governs them."""

    schema: RelSchema
    tables: dict[str, Table] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.tables = dict(self.tables)
        declared = set(self.schema.table_names)
        provided = set(self.tables)
        if declared != provided:
            missing = sorted(declared - provided)
            extra = sorted(provided - declared)
            raise SchemaError(
                f"dataset {self.schema.name!r} tables do not match its "
                f"schema: missing {missing}, undeclared {extra}"
            )
        for spec in self.schema:
            table = self.tables[spec.name]
            if not isinstance(table, Table):
                raise SchemaError(
                    f"member {spec.name!r} must be a Table, "
                    f"got {type(table).__name__}"
                )
            declared_cols = [(c.name, c.ctype) for c in spec.schema]
            actual_cols = [(c.name, c.ctype) for c in table.schema]
            if declared_cols != actual_cols:
                raise SchemaError(
                    f"table {spec.name!r} does not match its declaration: "
                    f"declared {declared_cols}, got {actual_cols}"
                )
        self.check_integrity()

    # -- validation ----------------------------------------------------------

    def check_integrity(self) -> None:
        """Enforce key uniqueness and referential integrity.

        Raises :class:`~repro.exceptions.DataError` naming every violated
        constraint: a duplicated or missing primary-key value, or a
        foreign-key value with no matching parent row.  Missing FK values
        (NaN / ``""``) are allowed — an optional link — but missing
        *primary* keys are not.
        """
        problems: list[str] = []
        for spec in self.schema:
            table = self.tables[spec.name]
            if spec.key is not None:
                keys = table.column(spec.key)
                missing = int(_missing_mask(keys).sum())
                if missing:
                    problems.append(
                        f"{spec.name}.{spec.key}: {missing} missing "
                        f"key value(s)"
                    )
                if len(np.unique(keys)) != len(keys) - missing:
                    problems.append(
                        f"{spec.name}.{spec.key}: duplicate key values"
                    )
            for fk in spec.foreign_keys:
                child = table.column(fk.column)
                parent = self.tables[fk.references_table].column(
                    fk.references_column
                )
                live = child[~_missing_mask(child)]
                dangling = int((~np.isin(live, parent)).sum())
                if dangling:
                    problems.append(
                        f"{spec.name}.{fk.column}: {dangling} value(s) "
                        f"with no match in {fk.references_table}."
                        f"{fk.references_column}"
                    )
        if problems:
            raise DataError(
                f"dataset {self.schema.name!r} fails integrity checks: "
                + "; ".join(problems)
            )

    # -- access --------------------------------------------------------------

    @property
    def table_names(self) -> list[str]:
        """Member table names in declaration order."""
        return self.schema.table_names

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __len__(self) -> int:
        return len(self.tables)

    def table(self, name: str) -> Table:
        """The member table called ``name``."""
        if name not in self.tables:
            raise DataError(
                f"dataset {self.schema.name!r} has no table {name!r}; "
                f"members: {self.table_names}"
            )
        return self.tables[name]

    def spec(self, name: str) -> TableSpec:
        """The declaration of member table ``name``."""
        return self.schema.table(name)

    def with_table(self, name: str, table: Table) -> "Dataset":
        """A new dataset with member ``name`` replaced (revalidated)."""
        self.table(name)  # raise early on unknown names
        return Dataset(self.schema, {**self.tables, name: table})

    # -- identity ------------------------------------------------------------

    def content_fingerprint(self) -> str:
        """Schema identity + every member table's content, as one hash."""
        return dataset_fingerprint(self)

    # Engine protocol: nodes taking a Dataset input fold this into their
    # cache keys (see ``repro.engine.value_fingerprint``).
    __content_fingerprint__ = content_fingerprint

    # -- relational operations -----------------------------------------------

    def join(self, child: str, parent: str, *, how: str = "inner",
             suffix: str = "_r") -> Table:
        """Join member ``child`` to member ``parent`` along declared FKs.

        The join keys come from the schema — every foreign key from
        ``child`` to ``parent`` contributes a key pair — so callers
        cannot join along undeclared relationships by accident.  Roles
        propagate per :mod:`repro.relational.propagation`.
        """
        links = self.schema.foreign_keys_between(child, parent)
        if not links:
            raise SchemaError(
                f"schema {self.schema.name!r} declares no foreign key "
                f"from {child!r} to {parent!r}"
            )
        if how not in ("inner", "left"):
            raise DataError(f"how must be 'inner' or 'left', got {how!r}")
        kernel = inner_join if how == "inner" else left_join
        return kernel(
            self.table(child), self.table(parent),
            [fk.column for fk in links],
            right_on=[fk.references_column for fk in links],
            suffix=suffix,
        )

    # -- migration -----------------------------------------------------------

    def migrate(self, *ops) -> "Dataset":
        """Apply migration ops, bump the version, extend the log.

        Each op is one of :data:`repro.relational.migrate.MIGRATION_OPS`.
        The whole batch lands as one new schema version whose migration
        log carries one entry per op — and because the log joins the
        schema identity, the migrated dataset's fingerprint differs from
        both the original's and from any same-shape dataset built
        directly.
        """
        if not ops:
            raise SchemaError("migrate needs at least one operation")
        specs = list(self.schema.tables)
        tables = dict(self.tables)
        entries = []
        for op in ops:
            if not hasattr(op, "apply") or not hasattr(op, "entry"):
                raise SchemaError(
                    f"not a migration op: {type(op).__name__}"
                )
            specs, tables = op.apply(specs, tables)
            entries.append(op.entry())
        schema = RelSchema(
            name=self.schema.name,
            tables=specs,
            version=self.schema.version + 1,
            migrations=self.schema.migrations + tuple(entries),
        )
        return Dataset(schema, tables)

    def __repr__(self) -> str:
        members = ", ".join(
            f"{name}[{self.tables[name].n_rows}]" for name in self.table_names
        )
        return (f"Dataset({self.schema.name!r} v{self.schema.version}: "
                f"{members})")
