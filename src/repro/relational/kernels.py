"""Vectorized join/aggregate kernels over :class:`~repro.data.table.Table`.

Joins are implemented the classic sort-merge way with numpy primitives:
each key column's factorization (sorted uniques + dense codes) is cached
on its immutable table, left keys are mapped into the *right* side's
code space (a left value the right side never holds maps to ``-1`` — it
cannot match, so no union factorization is needed), the right side is
stably sorted by code, and each left key finds its match range via
``np.searchsorted`` — no Python-level row loop anywhere.  A first join
against a table costs O((n+m) log m); repeat joins against the same
table (star-schema dimensions, resampling loops) reuse the cached
factorization and skip the sort entirely.

Two properties matter more than speed and are guaranteed:

* **determinism / order stability** — output rows follow the left
  table's row order; a key that matches several right rows fans out in
  the right table's original row order (stable sort).  The same inputs
  produce byte-identical output on every run, which is what lets joins
  memoize in the artifact store and run as engine nodes at any
  ``n_jobs``.
* **FACT role propagation** — the joined schema is *derived*, not
  copied: key columns take the strictest role of their two lineages and
  are promoted to quasi-identifiers when the join fans out (see
  :mod:`repro.relational.propagation`); a SENSITIVE column stays
  SENSITIVE through every join.

Missing keys follow SQL semantics: a NaN numeric key or empty-string
categorical key never matches anything — inner joins drop such rows,
left joins emit them unmatched.  Unmatched right-side values are filled
with NaN (numeric) or ``""`` (categorical).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.data.schema import (
    ColumnRole,
    ColumnSpec,
    ColumnType,
    Schema,
    numeric,
)
from repro.data.table import Table
from repro.exceptions import DataError, SchemaError
from repro.relational.propagation import propagate_key_role

#: The categorical missing-key / fill sentinel.
MISSING_CATEGORICAL = ""

#: Supported aggregate operations.
AGGREGATE_OPS = ("count", "sum", "mean", "min", "max")


def _as_names(value: str | Sequence[str], what: str) -> list[str]:
    names = [value] if isinstance(value, str) else list(value)
    if not names:
        raise DataError(f"{what} needs at least one column")
    return names


def _composite_codes(parts: list[np.ndarray],
                     sizes: list[int]) -> np.ndarray:
    """Combine per-column code arrays into one composite code per row.

    ``parts[i]`` holds codes in ``[0, sizes[i])`` with ``-1`` marking a
    missing key.  The combination is lexicographic-order-preserving
    (sorting by composite sorts by key values), and ``-1`` in any column
    forces the composite to ``-1``.  Falls back to a row-wise
    ``np.unique`` when the stride product could overflow int64.
    """
    first = parts[0].astype(np.int64, copy=False)
    if len(parts) == 1:
        return first
    invalid = first < 0
    for part in parts[1:]:
        invalid = invalid | (part < 0)
    total = 1
    for size in sizes:
        total *= max(int(size), 1)
    if total < 2 ** 62:
        composite = first
        for part, size in zip(parts[1:], sizes[1:]):
            composite = composite * np.int64(max(int(size), 1)) + part
    else:
        stacked = np.stack(parts, axis=1)
        _, composite = np.unique(stacked, axis=0, return_inverse=True)
        composite = composite.astype(np.int64)
    return np.where(invalid, np.int64(-1), composite)


def _table_codes(table: Table, names: list[str]) -> np.ndarray:
    """Composite key codes for one table's rows (missing → ``-1``).

    Uses the table's cached per-column factorizations; codes ascend
    with the key values, so sorting by code sorts by key.
    """
    parts, sizes = [], []
    for name in names:
        uniques, codes, _, _ = table._factorized(name)
        parts.append(codes)
        sizes.append(len(uniques))
    return _composite_codes(parts, sizes)


def _map_into(left_uniques: np.ndarray,
              right_uniques: np.ndarray) -> np.ndarray:
    """Map positions in ``left_uniques`` to positions in ``right_uniques``.

    Values absent from the right side map to ``-1`` — they can never
    match, which is exactly the missing-key semantics downstream.
    """
    if not len(left_uniques) or not len(right_uniques):
        return np.full(len(left_uniques), -1, dtype=np.int64)
    position = np.searchsorted(right_uniques, left_uniques)
    clipped = np.minimum(position, len(right_uniques) - 1)
    return np.where(
        right_uniques[clipped] == left_uniques, clipped, -1
    ).astype(np.int64)


def _join_codes(left: Table, right: Table, on: list[str],
                right_on: list[str]):
    """Key codes for both sides, expressed in the right table's space.

    Returns ``(left_codes, right_codes, right_order)``; ``right_order``
    is the right column's cached stable sort (matchable rows only) for
    single-key joins, ``None`` when :func:`_match_ranges` must sort a
    multi-key composite itself.
    """
    left_parts, right_parts, sizes = [], [], []
    right_order = None
    for left_name, right_name in zip(on, right_on):
        left_uniques, left_codes, _, _ = left._factorized(left_name)
        right_uniques, right_codes, order, n_missing = (
            right._factorized(right_name)
        )
        mapping = _map_into(left_uniques, right_uniques)
        if len(left_uniques):
            mapped = mapping[np.maximum(left_codes, 0)]
            mapped = np.where(left_codes < 0, np.int64(-1), mapped)
        else:
            mapped = left_codes
        left_parts.append(mapped)
        right_parts.append(right_codes)
        sizes.append(len(right_uniques))
        if len(on) == 1:
            right_order = order[n_missing:]
    return (
        _composite_codes(left_parts, sizes),
        _composite_codes(right_parts, sizes),
        right_order,
    )


def _match_ranges(left_codes: np.ndarray, right_codes: np.ndarray,
                  order: np.ndarray | None = None):
    """Per-left-row match ranges into the stably sorted right side.

    Returns ``(order, starts, ends)`` where ``order`` stably sorts the
    matchable right rows by key code and ``order[starts[i]:ends[i]]``
    are left row ``i``'s matches in the right table's original row
    order.  A precomputed ``order`` (the cached single-key sort) skips
    the argsort.
    """
    if order is None:
        matchable = right_codes >= 0
        candidates = np.flatnonzero(matchable)
        order = candidates[np.argsort(right_codes[candidates],
                                      kind="stable")]
    sorted_codes = right_codes[order]
    starts = np.searchsorted(sorted_codes, left_codes, side="left")
    ends = np.searchsorted(sorted_codes, left_codes, side="right")
    unmatched = left_codes < 0
    starts = np.where(unmatched, 0, starts)
    ends = np.where(unmatched, 0, ends)
    return order, starts, ends


def _expand(starts: np.ndarray, ends: np.ndarray):
    """Vectorized per-row range expansion.

    For counts ``c_i = ends_i - starts_i``, returns ``(left_take,
    right_positions)``: left row ``i`` repeated ``c_i`` times, aligned
    with the flattened ``range(starts_i, ends_i)`` positions.
    """
    counts = ends - starts
    total = int(counts.sum())
    left_take = np.repeat(np.arange(len(counts), dtype=np.intp), counts)
    if total == 0:
        return left_take, np.zeros(0, dtype=np.intp)
    cumulative = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.intp) - np.repeat(cumulative, counts)
    positions = np.repeat(starts, counts) + offsets
    return left_take, positions.astype(np.intp)


def _fill_value(ctype: ColumnType):
    return np.nan if ctype is ColumnType.NUMERIC else MISSING_CATEGORICAL


def _joined_schema(left: Table, right: Table, on: list[str],
                   right_on: list[str], suffix: str,
                   fan_out: bool) -> tuple[Schema, list[tuple[str, str, str]]]:
    """The join output schema plus the column plan.

    Returns ``(schema, plan)`` where each plan entry is ``(output_name,
    side, source_name)`` with side ``"left"`` or ``"right"``.  Key
    columns appear once (left's name) with a propagated role; non-key
    right columns clashing with a left name get ``suffix`` appended.
    """
    specs: list[ColumnSpec] = []
    plan: list[tuple[str, str, str]] = []
    right_key_roles = {
        left_name: right.schema[right_name].role
        for left_name, right_name in zip(on, right_on)
    }
    left_has_target = any(
        spec.role is ColumnRole.TARGET for spec in left.schema
    )
    for spec in left.schema:
        if spec.name in right_key_roles:
            specs.append(propagate_key_role(
                spec, spec.role, right_key_roles[spec.name], fan_out
            ))
        else:
            specs.append(spec)
        plan.append((specs[-1].name, "left", spec.name))
    taken = {spec.name for spec in specs}
    for spec in right.schema:
        if spec.name in right_on:
            continue
        name = spec.name
        if name in taken:
            name = f"{name}{suffix}"
            if name in taken:
                raise SchemaError(
                    f"join output column {name!r} still collides after "
                    f"suffixing; pick a different suffix"
                )
        role = spec.role
        if role is ColumnRole.TARGET and left_has_target:
            # Two TARGET declarations would make the joined table's
            # target ambiguous; the left (driving) side keeps it.
            role = ColumnRole.METADATA
        specs.append(ColumnSpec(name, spec.ctype, role, spec.description))
        plan.append((name, "right", spec.name))
        taken.add(name)
    return Schema(specs), plan


def _validate_keys(left: Table, right: Table, on: list[str],
                   right_on: list[str]) -> None:
    if len(on) != len(right_on):
        raise DataError(
            f"join got {len(on)} left key(s) but {len(right_on)} right key(s)"
        )
    for left_name, right_name in zip(on, right_on):
        left_spec = left.schema[left_name]
        right_spec = right.schema[right_name]
        if left_spec.ctype is not right_spec.ctype:
            raise SchemaError(
                f"cannot join {left_name!r} ({left_spec.ctype.value}) "
                f"against {right_name!r} ({right_spec.ctype.value})"
            )


def _join_one(left: Table, right: Table, on: list[str],
              right_on: list[str], suffix: str,
              keep_unmatched: bool) -> tuple[Table, bool]:
    """Join one left table; returns ``(result, fan_out)``."""
    _validate_keys(left, right, on, right_on)

    left_codes, right_codes, right_order = _join_codes(
        left, right, on, right_on
    )
    order, starts, ends = _match_ranges(left_codes, right_codes,
                                        right_order)
    counts = ends - starts
    fan_out = bool(counts.size) and int(counts.max()) > 1

    if keep_unmatched:
        # Left join: unmatched rows emit once, with right side filled.
        ends_eff = np.where(counts == 0, starts + 1, ends)
        left_take, positions = _expand(starts, ends_eff)
        matched = np.repeat(counts > 0, np.where(counts == 0, 1, counts))
        right_take = np.where(
            matched, order[np.minimum(positions, len(order) - 1)]
            if len(order) else 0, 0,
        ).astype(np.intp)
    else:
        left_take, positions = _expand(starts, ends)
        right_take = order[positions] if len(order) else positions
        matched = np.ones(len(left_take), dtype=bool)

    schema, plan = _joined_schema(left, right, on, right_on, suffix, fan_out)
    columns: dict[str, np.ndarray] = {}
    for output_name, side, source in plan:
        if side == "left":
            columns[output_name] = left.column(source)[left_take]
        else:
            source_values = right.column(source)
            if len(source_values):
                values = source_values[right_take]
            else:
                fill = _fill_value(right.schema[source].ctype)
                values = np.full(len(right_take), fill,
                                 dtype=source_values.dtype)
            if not matched.all():
                values = values.copy()
                values[~matched] = _fill_value(right.schema[source].ctype)
            columns[output_name] = values
    # Output columns are gathers/fills of canonical arrays — skip the
    # per-element re-coercion in Table.__init__ (the join's hot path).
    return Table._from_canonical(schema, columns, len(left_take)), fan_out


def _reschema(table: Table, schema: Schema) -> Table:
    """Zero-copy schema swap (same names/types, different roles)."""
    return Table._from_canonical(
        schema,
        {name: table.column(name) for name in schema.names},
        table.n_rows,
    )


def _join(left, right: Table, on, right_on, suffix: str,
          keep_unmatched: bool) -> Table:
    on = _as_names(on, "join")
    right_on = on if right_on is None else _as_names(right_on, "join")
    if isinstance(left, Table):
        return _join_one(left, right, on, right_on, suffix,
                         keep_unmatched)[0]

    # Streaming: ``left`` is an iterable of shard-sized chunks, joined
    # one at a time (never materialized as one table up front).  Fan-out
    # detection is global — a key that fans out in *any* chunk promotes
    # the joined key columns to quasi-identifiers everywhere, exactly as
    # the equivalent single-table join would — so chunks joined before
    # the first fan-out are re-schema'd (a zero-copy role swap) before
    # the streamed concat.
    outputs: list[Table] = []
    fan_outs: list[bool] = []
    for chunk in left:
        result, chunk_fan_out = _join_one(
            chunk, right, on, right_on, suffix, keep_unmatched
        )
        outputs.append(result)
        fan_outs.append(chunk_fan_out)
    if not outputs:
        raise DataError("join needs at least one left table")
    if any(fan_outs) and not all(fan_outs):
        promoted = outputs[fan_outs.index(True)].schema
        outputs = [
            output if chunk_fan_out else _reschema(output, promoted)
            for output, chunk_fan_out in zip(outputs, fan_outs)
        ]
    if len(outputs) == 1:
        return outputs[0]
    return Table.concat(outputs)


def inner_join(left, right: Table, on, *, right_on=None,
               suffix: str = "_r") -> Table:
    """Rows of ``left`` matched with rows of ``right`` on equal keys.

    ``on`` is one column name or a list (same names on both sides unless
    ``right_on`` gives the right table's key names).  Output order is
    the left table's row order; many-to-many keys fan out in the right
    table's row order.  Missing keys (NaN / ``""``) never match.

    ``left`` may also be an *iterable* of same-schema tables (e.g.
    ``PartitionedTable.shards()``): chunks join one at a time and the
    results concatenate in order — identical output to joining the
    concatenated table, without holding all chunks at once.
    """
    return _join(left, right, on, right_on, suffix, keep_unmatched=False)


def left_join(left, right: Table, on, *, right_on=None,
              suffix: str = "_r") -> Table:
    """Every ``left`` row, with ``right`` columns where keys match.

    Unmatched left rows keep exactly one output row with the right-side
    columns filled (NaN for numeric, ``""`` for categorical).  As with
    :func:`inner_join`, ``left`` may be an iterable of same-schema
    chunk tables, streamed through one at a time.
    """
    return _join(left, right, on, right_on, suffix, keep_unmatched=True)


def _aggregate_schema(table: Table, by: list[str],
                      spec: list[tuple[str, str | None, str]]) -> Schema:
    columns = [table.schema[name] for name in by]
    for output_name, source, op in spec:
        if source is None:
            role = ColumnRole.FEATURE
            description = "group row count"
        else:
            source_spec = table.schema[source]
            role = source_spec.role
            if role is ColumnRole.TARGET:
                role = ColumnRole.FEATURE
            description = f"{op} of {source}"
        columns.append(numeric(output_name, role=role,
                               description=description))
    return Schema(columns)


def _normalise_aggregations(table: Table, aggregations) -> list:
    """``[(output_name, source_column_or_None, op), ...]`` validated."""
    if isinstance(aggregations, Mapping):
        items = list(aggregations.items())
    else:
        items = [(None, entry) for entry in aggregations]
    spec = []
    for output_name, entry in items:
        if isinstance(entry, str):
            source, op = None, entry
        else:
            source, op = entry
        op = str(op)
        if op not in AGGREGATE_OPS:
            raise DataError(
                f"unknown aggregate op {op!r}; one of {AGGREGATE_OPS}"
            )
        if op == "count":
            source = None
        else:
            if source is None:
                raise DataError(f"{op} needs a source column")
            if table.schema[source].ctype is not ColumnType.NUMERIC:
                raise DataError(
                    f"{op} needs a numeric column, {source!r} is not"
                )
        if output_name is None:
            output_name = op if source is None else f"{source}_{op}"
        spec.append((str(output_name), source, op))
    names = [name for name, _, _ in spec]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise DataError(
            f"duplicate aggregate output names: {sorted(duplicates)}"
        )
    return spec


def group_aggregate(table: Table, by, aggregations) -> Table:
    """Grouped aggregates, one output row per distinct key combination.

    ``by`` is one column name or a list; ``aggregations`` maps output
    names to ``(column, op)`` pairs (or ``"count"``), with ops from
    :data:`AGGREGATE_OPS`.  Output rows are sorted ascending by the
    group keys (missing keys — NaN / ``""`` — form one group, first),
    so the result is a deterministic function of the input rows.
    Aggregates of a TARGET column come back as FEATUREs (a grouped
    summary is a derived covariate, not the decision variable); other
    roles are inherited — the mean of a SENSITIVE column is SENSITIVE.
    """
    by = _as_names(by, "group_aggregate")
    spec = _normalise_aggregations(table, aggregations)
    schema = _aggregate_schema(table, by, spec)

    codes = _table_codes(table, by)
    if len(by) == 1:
        order = table._factorized(by[0])[2]
    else:
        order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    if len(sorted_codes):
        boundaries = np.flatnonzero(
            np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
        )
        counts = np.diff(np.r_[boundaries, len(sorted_codes)])
    else:
        boundaries = np.zeros(0, dtype=np.intp)
        counts = np.zeros(0, dtype=np.int64)
    first_rows = order[boundaries]

    columns: dict[str, np.ndarray] = {
        name: table.column(name)[first_rows] for name in by
    }
    for output_name, source, op in spec:
        if op == "count":
            columns[output_name] = counts.astype(np.float64)
            continue
        values = table.column(source)[order]
        if not len(values):
            columns[output_name] = np.zeros(0, dtype=np.float64)
            continue
        if op == "sum":
            result = np.add.reduceat(values, boundaries)
        elif op == "mean":
            result = np.add.reduceat(values, boundaries) / counts
        elif op == "min":
            result = np.minimum.reduceat(values, boundaries)
        else:
            result = np.maximum.reduceat(values, boundaries)
        columns[output_name] = result.astype(np.float64)
    return Table._from_canonical(schema, columns, len(first_rows))
