"""``SchemaRegistry``: the servable-table registry, relational-aware.

The serve planner historically kept its own ``{name: table}`` dict; the
registry extracts that and adds two things the relational layer needs:

* **whole-dataset registration** — ``register_dataset`` publishes every
  member table of a :class:`~repro.relational.Dataset` in one call and
  remembers the dataset itself, so a server can expose a multi-table
  scenario without per-table boilerplate (``register_table`` stays as
  the thin single-table wrapper);
* **store-tag invalidation** — when an
  :class:`~repro.store.ArtifactStore` is attached, every registration
  records the table's content fingerprint, and *re*-registration
  invalidates the ``table:<old-fingerprint>`` tag.  Any memoised join,
  aggregate, or pipeline artifact computed from the replaced rows is
  evicted in one call — serving never replays results about data that
  no longer exists.
"""

from __future__ import annotations

from repro.data.table import Table
from repro.exceptions import DataError
from repro.relational.dataset import Dataset
from repro.store.fingerprint import table_fingerprint


class SchemaRegistry:
    """Versioned registry of servable tables (and whole datasets)."""

    def __init__(self, store=None):
        self._store = store
        self._tables: dict[str, Table] = {}
        self._versions: dict[str, int] = {}
        self._fingerprints: dict[str, str] = {}
        self._datasets: dict[str, Dataset] = {}

    # -- registration -------------------------------------------------------

    def register_table(self, name: str, table: Table) -> None:
        """Publish ``table`` as ``name``; re-registering bumps its version.

        With a store attached, replacing a table invalidates the
        ``table:<fingerprint>`` tag of the *old* rows, evicting every
        artifact memoised from them.
        """
        if not name:
            raise DataError("table name must be non-empty")
        if not isinstance(table, Table):
            raise DataError(f"expected a Table, got {type(table).__name__}")
        if self._store is not None:
            previous = self._fingerprints.get(name)
            if previous is not None:
                self._store.invalidate_tag(f"table:{previous}")
            self._fingerprints[name] = table_fingerprint(table)
        self._tables[name] = table
        self._versions[name] = self._versions.get(name, 0) + 1

    def register_dataset(self, dataset: Dataset) -> list[str]:
        """Publish every member table of ``dataset``; returns their names.

        Member tables land under their plain table names (the schema
        names them uniquely); the dataset itself is retrievable by its
        schema name via :meth:`dataset`.
        """
        if not isinstance(dataset, Dataset):
            raise DataError(
                f"expected a Dataset, got {type(dataset).__name__}"
            )
        for name in dataset.table_names:
            self.register_table(name, dataset.table(name))
        self._datasets[dataset.schema.name] = dataset
        return list(dataset.table_names)

    # -- lookup -------------------------------------------------------------

    @property
    def tables(self) -> dict[str, Table]:
        """The live name → table mapping (mutate via ``register_*`` only)."""
        return self._tables

    @property
    def versions(self) -> dict[str, int]:
        """The live name → registration-count mapping."""
        return self._versions

    @property
    def table_names(self) -> list[str]:
        """Registered table names, in registration order."""
        return list(self._tables)

    @property
    def dataset_names(self) -> list[str]:
        """Registered dataset (schema) names."""
        return list(self._datasets)

    def table(self, name: str) -> Table:
        """The registered table called ``name``."""
        if name not in self._tables:
            raise DataError(
                f"unknown table {name!r}; registered: {self.table_names}"
            )
        return self._tables[name]

    def version(self, name: str) -> int:
        """How many times ``name`` has been (re-)registered."""
        self.table(name)
        return self._versions[name]

    def dataset(self, name: str) -> Dataset:
        """The registered dataset whose schema is named ``name``."""
        if name not in self._datasets:
            raise DataError(
                f"unknown dataset {name!r}; registered: {self.dataset_names}"
            )
        return self._datasets[name]

    def fingerprint(self, name: str) -> str | None:
        """The registered content fingerprint of table ``name``.

        ``None`` when no store is attached (fingerprints are only
        tracked when there are tags to invalidate).
        """
        self.table(name)
        return self._fingerprints.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)
