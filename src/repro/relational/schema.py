"""Declarative multi-table schemas: tables, keys, and typed FK links.

The paper argues responsibility must be designed in "already during the
requirements and design phases".  :mod:`repro.data.schema` does that for
one table; real responsible-DS scenarios are relational (users ⋈
transactions ⋈ outcomes), and the *relationships* are where new failure
modes hide — a join can re-introduce a proxy for a sensitive attribute
that single-table redaction removed.  A :class:`RelSchema` declares the
related tables and their typed foreign-key links up front, validates the
wiring at construction time (dangling references, type mismatches,
ownership cycles all raise :class:`~repro.exceptions.SchemaError`), and
carries a versioned migration log so a dataset's lineage of structural
changes is part of its identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.schema import Schema
from repro.exceptions import SchemaError


@dataclass(frozen=True)
class ForeignKey:
    """A typed link: ``column`` in the owning table references
    ``references_column`` in ``references_table``."""

    column: str
    references_table: str
    references_column: str


@dataclass(frozen=True)
class TableSpec:
    """Declaration of one member table: name, column schema, keys.

    ``key`` names the table's primary-key column (unique per row —
    enforced by :meth:`repro.relational.Dataset.check_integrity`);
    ``foreign_keys`` declare which columns reference other tables.
    """

    name: str
    schema: Schema
    key: str | None = None
    foreign_keys: tuple[ForeignKey, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table spec needs a non-empty name")
        object.__setattr__(self, "foreign_keys", tuple(self.foreign_keys))
        if self.key is not None and self.key not in self.schema:
            raise SchemaError(
                f"table {self.name!r} declares key {self.key!r}, "
                f"which is not one of its columns {self.schema.names}"
            )
        for fk in self.foreign_keys:
            if not isinstance(fk, ForeignKey):
                raise SchemaError(
                    f"table {self.name!r}: foreign_keys must be ForeignKey "
                    f"objects, got {type(fk).__name__}"
                )
            if fk.column not in self.schema:
                raise SchemaError(
                    f"table {self.name!r} declares a foreign key on "
                    f"{fk.column!r}, which is not one of its columns"
                )


@dataclass
class RelSchema:
    """A validated collection of related :class:`TableSpec` declarations.

    Construction rejects malformed wiring outright:

    * duplicate table names;
    * dangling foreign keys (unknown parent table or parent column);
    * type mismatches (an FK column must store the same
      :class:`~repro.data.schema.ColumnType` as the column it references);
    * cycles in the ownership graph (table A references B references A —
      no valid load/validation order would exist).

    ``version`` and ``migrations`` are the schema's change history,
    maintained by :meth:`repro.relational.Dataset.migrate`; both fold
    into the dataset fingerprint so two datasets that reached the same
    shape through different histories are distinguishable.
    """

    name: str
    tables: list[TableSpec] = field(default_factory=list)
    version: int = 1
    migrations: tuple = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relational schema needs a non-empty name")
        self.tables = list(self.tables)
        self.migrations = tuple(self.migrations)
        names = [spec.name for spec in self.tables]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(
                f"duplicate table names in schema {self.name!r}: "
                f"{sorted(duplicates)}"
            )
        by_name = {spec.name: spec for spec in self.tables}
        for spec in self.tables:
            for fk in spec.foreign_keys:
                parent = by_name.get(fk.references_table)
                if parent is None:
                    raise SchemaError(
                        f"table {spec.name!r} references unknown table "
                        f"{fk.references_table!r} via {fk.column!r}"
                    )
                if fk.references_column not in parent.schema:
                    raise SchemaError(
                        f"table {spec.name!r} references "
                        f"{fk.references_table}.{fk.references_column}, "
                        f"which does not exist"
                    )
                child_type = spec.schema[fk.column].ctype
                parent_type = parent.schema[fk.references_column].ctype
                if child_type is not parent_type:
                    raise SchemaError(
                        f"foreign key {spec.name}.{fk.column} is "
                        f"{child_type.value} but references "
                        f"{fk.references_table}.{fk.references_column} "
                        f"({parent_type.value})"
                    )
        self._check_acyclic(by_name)

    @staticmethod
    def _check_acyclic(by_name: dict[str, TableSpec]) -> None:
        """Reject FK cycles — there would be no valid ownership order."""
        edges = {
            name: {fk.references_table for fk in spec.foreign_keys}
            for name, spec in by_name.items()
        }
        resolved: set[str] = set()
        remaining = list(by_name)
        while remaining:
            ready = [
                name for name in remaining
                if edges[name] <= resolved
            ]
            if not ready:
                raise SchemaError(
                    "ownership cycle through tables: "
                    f"{sorted(remaining)}"
                )
            resolved.update(ready)
            remaining = [name for name in remaining if name not in ready]

    # -- lookup --------------------------------------------------------------

    @property
    def table_names(self) -> list[str]:
        """Member table names in declaration order."""
        return [spec.name for spec in self.tables]

    def __contains__(self, name: str) -> bool:
        return any(spec.name == name for spec in self.tables)

    def __iter__(self):
        return iter(self.tables)

    def __len__(self) -> int:
        return len(self.tables)

    def table(self, name: str) -> TableSpec:
        """The spec of member table ``name``."""
        for spec in self.tables:
            if spec.name == name:
                return spec
        raise SchemaError(
            f"schema {self.name!r} has no table {name!r}; "
            f"members: {self.table_names}"
        )

    def foreign_keys_between(self, child: str,
                             parent: str) -> list[ForeignKey]:
        """The FK links from ``child`` to ``parent`` (may be empty)."""
        return [
            fk for fk in self.table(child).foreign_keys
            if fk.references_table == parent
        ]

    # -- identity ------------------------------------------------------------

    def identity(self) -> dict:
        """The schema's canonical form (joined into dataset fingerprints)."""
        return {
            "name": self.name,
            "version": self.version,
            "tables": [
                {
                    "name": spec.name,
                    "key": spec.key,
                    "columns": [
                        [col.name, col.ctype.value, col.role.value]
                        for col in spec.schema
                    ],
                    "foreign_keys": [
                        [fk.column, fk.references_table,
                         fk.references_column]
                        for fk in spec.foreign_keys
                    ],
                }
                for spec in self.tables
            ],
            "migrations": [dict(entry) for entry in self.migrations],
        }
