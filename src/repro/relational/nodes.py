"""Relational kernels as engine :class:`~repro.engine.Node` factories.

Wrapping a join or aggregate as a node buys exactly what every other
engine computation gets for free: an automatic cache key (kernel code +
join parameters + full-content fingerprints of both input tables), spans
and provenance, bit-identical results at any ``n_jobs``/backend, and
store memoisation.  The cached artifact is tagged ``table:<fp>`` for
each input table's fingerprint — the same tag idiom the pipeline uses —
so re-registering a table through
:class:`~repro.relational.SchemaRegistry` invalidates every join that
consumed the old rows.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.engine import Node
from repro.exceptions import PlanError
from repro.relational.kernels import group_aggregate, inner_join, left_join

_JOIN_KERNELS = {"inner": inner_join, "left": left_join}


def join_node(name: str, *, left: str, right: str, on,
              how: str = "inner", right_on=None, suffix: str = "_r",
              label: str | None = None) -> Node:
    """A join as a cacheable engine node.

    ``left`` and ``right`` name the upstream nodes (or plan inputs)
    producing the two tables; the remaining arguments are those of
    :func:`repro.relational.inner_join` /
    :func:`repro.relational.left_join`.  The node is deterministic and
    draws no randomness, so it memoizes in any attached store.
    """
    if how not in _JOIN_KERNELS:
        raise PlanError(
            f"join node {name!r}: how must be one of "
            f"{sorted(_JOIN_KERNELS)}, got {how!r}"
        )
    if left == right:
        raise PlanError(
            f"join node {name!r}: left and right inputs must differ"
        )
    kernel = _JOIN_KERNELS[how]
    on_list = [on] if isinstance(on, str) else list(on)
    right_on_list = (None if right_on is None
                     else [right_on] if isinstance(right_on, str)
                     else list(right_on))

    def fn(inputs, rng):
        return kernel(inputs[left], inputs[right], on_list,
                      right_on=right_on_list, suffix=suffix)

    return Node(
        name, fn,
        inputs=(left, right),
        params={"how": how, "on": on_list, "right_on": right_on_list,
                "suffix": suffix},
        code=kernel,
        label=label or f"{how}_join:{name}",
        tags=lambda fps: (f"table:{fps[left]}", f"table:{fps[right]}"),
        annotate=lambda value, inputs: {"rows": value.n_rows},
    )


def aggregate_node(name: str, *, source: str, by, aggregations,
                   label: str | None = None) -> Node:
    """A grouped aggregation as a cacheable engine node.

    ``source`` names the upstream node (or plan input) producing the
    table; ``by``/``aggregations`` are those of
    :func:`repro.relational.group_aggregate`.
    """
    by_list = [by] if isinstance(by, str) else list(by)
    if isinstance(aggregations, Mapping):
        agg_param = {str(key): list(value) if not isinstance(value, str)
                     else value for key, value in aggregations.items()}
        agg_value: object = dict(aggregations)
    else:
        agg_param = [list(entry) if not isinstance(entry, str) else entry
                     for entry in aggregations]
        agg_value = list(aggregations)

    def fn(inputs, rng):
        return group_aggregate(inputs[source], by_list, agg_value)

    return Node(
        name, fn,
        inputs=(source,),
        params={"by": by_list, "aggregations": agg_param},
        code=group_aggregate,
        label=label or f"aggregate:{name}",
        tags=lambda fps: (f"table:{fps[source]}",),
        annotate=lambda value, inputs: {"groups": value.n_rows},
    )
