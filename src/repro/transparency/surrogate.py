"""Global surrogate models: distilling the black box into rules (Q4).

§2-Q4's complaint is that deep models "cannot rationalize" decisions.  A
global surrogate is the standard compromise: train an interpretable tree
to *imitate the black box* (not the labels), report both the rules and
the **fidelity** — how faithfully the rules reproduce the box.  Low
fidelity means the rationalisation is a fiction; the number keeps us
honest about that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import Classifier
from repro.learn.metrics import accuracy
from repro.learn.tree import DecisionTreeClassifier


@dataclass(frozen=True)
class SurrogateResult:
    """A fitted surrogate tree and its faithfulness to the black box."""

    tree: DecisionTreeClassifier
    fidelity: float
    fidelity_proba_mae: float
    n_leaves: int
    depth: int

    def rules(self, feature_names: list[str] | None = None) -> list[str]:
        """The surrogate's decision rules."""
        return self.tree.to_rules(feature_names)

    def render(self, feature_names: list[str] | None = None,
               max_rules: int = 12) -> str:
        """Human-readable rule list headed by the fidelity disclaimer."""
        lines = [
            f"surrogate tree: {self.n_leaves} leaves, depth {self.depth}, "
            f"fidelity {self.fidelity:.3f} "
            f"(probability MAE {self.fidelity_proba_mae:.3f})"
        ]
        lines += [f"  {rule}" for rule in self.rules(feature_names)[:max_rules]]
        return "\n".join(lines)


def fit_surrogate(black_box: Classifier, X,
                  max_depth: int = 4,
                  min_samples_leaf: int = 10,
                  X_eval=None) -> SurrogateResult:
    """Distil ``black_box`` into a shallow tree and score the fidelity.

    The tree is trained on the box's *hard decisions* over ``X``;
    fidelity is measured on ``X_eval`` (default: ``X``) as agreement with
    the box, plus the mean absolute probability gap.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or len(X) == 0:
        raise DataError("X must be a non-empty 2-D matrix")
    box_probabilities = black_box.predict_proba(X)
    box_decisions = (box_probabilities >= 0.5).astype(np.float64)
    if len(np.unique(box_decisions)) < 2:
        raise DataError(
            "black box is constant on X; a surrogate would be vacuous"
        )
    tree = DecisionTreeClassifier(
        max_depth=max_depth, min_samples_leaf=min_samples_leaf
    )
    tree.fit(X, box_decisions)

    eval_X = X if X_eval is None else np.asarray(X_eval, dtype=np.float64)
    eval_box_probabilities = black_box.predict_proba(eval_X)
    eval_box_decisions = (eval_box_probabilities >= 0.5).astype(np.float64)
    tree_probabilities = tree.predict_proba(eval_X)
    tree_decisions = (tree_probabilities >= 0.5).astype(np.float64)
    return SurrogateResult(
        tree=tree,
        fidelity=accuracy(eval_box_decisions, tree_decisions),
        fidelity_proba_mae=float(
            np.mean(np.abs(tree_probabilities - eval_box_probabilities))
        ),
        n_leaves=tree.n_leaves,
        depth=tree.depth(),
    )


def fidelity_by_depth(black_box: Classifier, X,
                      depths: list[int],
                      X_eval=None) -> dict[int, float]:
    """The comprehensibility-fidelity frontier: fidelity per tree depth.

    Small depths are readable but unfaithful; the curve quantifies the
    price of a human-sized explanation (experiment E9's x-axis).
    """
    return {
        depth: fit_surrogate(black_box, X, max_depth=depth, X_eval=X_eval).fidelity
        for depth in depths
    }
