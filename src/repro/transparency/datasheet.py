"""Dataset datasheets (Q4).

The data-side companion of the model card: where the data came from, what
each column is (with its FACT role), summary statistics, known injected
or suspected biases, and disclosure-risk figures.  "Each step in the
data science pipeline may create inaccuracies" — the datasheet is step
zero's paper trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.confidentiality.risk import RiskProfile, assess_risk
from repro.data.table import Table
from repro.store import Artifact


@dataclass
class Datasheet(Artifact):
    """A structured, renderable description of one dataset.

    An :class:`~repro.store.Artifact`: ``to_dict``/``to_json`` serialise
    the datasheet and ``fingerprint()`` mints its content hash.
    """

    name: str
    provenance: str
    n_rows: int
    column_summary: dict[str, dict[str, object]]
    known_biases: list[str] = field(default_factory=list)
    collection_notes: list[str] = field(default_factory=list)
    risk: RiskProfile | None = None

    def render(self) -> str:
        """The datasheet as markdown."""
        lines = [f"# Datasheet: {self.name}", ""]
        lines.append(f"**Provenance:** {self.provenance}")
        lines.append(f"**Rows:** {self.n_rows}")
        lines += ["", "## Columns"]
        for name, summary in self.column_summary.items():
            role = summary.get("role", "?")
            ctype = summary.get("type", "?")
            extras = ", ".join(
                f"{key}={value:.3g}" if isinstance(value, float) else f"{key}={value}"
                for key, value in summary.items()
                if key not in ("role", "type", "n")
            )
            lines.append(f"- `{name}` ({ctype}, role={role}) {extras}")
        if self.known_biases:
            lines += ["", "## Known biases"]
            lines += [f"- {item}" for item in self.known_biases]
        if self.collection_notes:
            lines += ["", "## Collection notes"]
            lines += [f"- {item}" for item in self.collection_notes]
        if self.risk is not None:
            lines += ["", "## Disclosure risk", f"- {self.risk.render()}"]
        return "\n".join(lines)


def build_datasheet(table: Table, name: str, provenance: str,
                    known_biases: list[str] | None = None,
                    collection_notes: list[str] | None = None) -> Datasheet:
    """Assemble a datasheet from the table's schema and statistics."""
    risk = None
    if table.schema.quasi_identifier_names:
        risk = assess_risk(table)
    return Datasheet(
        name=name,
        provenance=provenance,
        n_rows=table.n_rows,
        column_summary=table.describe(),
        known_biases=list(known_biases or ()),
        collection_notes=list(collection_notes or ()),
        risk=risk,
    )
