"""Individual conditional expectation (ICE) curves (Q4).

Partial dependence averages over the population; ICE keeps one curve per
individual, revealing when "the average effect" hides opposite effects
for different people — heterogeneity that a responsible explanation must
not paper over.  The spread statistic flags features whose effect is
strongly interaction-driven.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import Classifier


@dataclass(frozen=True)
class ICEResult:
    """Per-individual response curves for one feature."""

    feature: str
    grid: np.ndarray
    curves: np.ndarray  # shape (n_individuals, grid_size)

    @property
    def partial_dependence(self) -> np.ndarray:
        """The PD curve: the mean of the ICE curves."""
        return self.curves.mean(axis=0)

    @property
    def heterogeneity(self) -> float:
        """Mean std of centred curves — 0 when everyone responds alike.

        Curves are centred at their own first value so level differences
        between individuals don't masquerade as interaction effects.
        """
        centred = self.curves - self.curves[:, :1]
        return float(centred.std(axis=0).mean())

    def fraction_non_monotone(self, tolerance: float = 1e-6) -> float:
        """Share of individuals whose curve changes direction."""
        deltas = np.diff(self.curves, axis=1)
        rises = (deltas > tolerance).any(axis=1)
        falls = (deltas < -tolerance).any(axis=1)
        return float(np.mean(rises & falls))


def ice_curves(model: Classifier, X, feature_index: int,
               grid_size: int = 20, max_individuals: int = 100,
               feature_name: str | None = None,
               rng: np.random.Generator | None = None) -> ICEResult:
    """ICE curves of P(positive) for a sample of individuals.

    At most ``max_individuals`` rows are traced (randomly sampled when an
    ``rng`` is supplied, else the first rows).
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or len(X) == 0:
        raise DataError("X must be a non-empty 2-D matrix")
    if not 0 <= feature_index < X.shape[1]:
        raise DataError(f"feature_index {feature_index} out of range")
    if grid_size < 2:
        raise DataError("grid_size must be >= 2")
    if len(X) > max_individuals:
        if rng is not None:
            rows = rng.choice(len(X), size=max_individuals, replace=False)
        else:
            rows = np.arange(max_individuals)
        X = X[rows]
    values = X[:, feature_index]
    grid = np.linspace(values.min(), values.max(), grid_size)
    curves = np.empty((len(X), grid_size))
    for column, value in enumerate(grid):
        modified = X.copy()
        modified[:, feature_index] = value
        curves[:, column] = model.predict_proba(modified)
    name = feature_name if feature_name is not None else f"x{feature_index}"
    return ICEResult(feature=name, grid=grid, curves=curves)
