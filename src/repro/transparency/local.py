"""Local surrogate explanations (LIME-style) (Q4).

For one decision about one person — the case the paper's "non-transparent
life-changing decisions" phrase is about — fit a small weighted linear
model to the black box in a neighbourhood of that person, and read the
coefficients as the local rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import Classifier
from repro.learn.linear import RidgeRegression


@dataclass(frozen=True)
class LocalExplanation:
    """The local linear rationale for one prediction."""

    feature_names: list[str]
    coefficients: np.ndarray
    intercept: float
    prediction: float
    local_fit_r2: float

    def ranked(self) -> list[tuple[str, float]]:
        """(name, weight) by absolute local influence."""
        order = np.argsort(-np.abs(self.coefficients), kind="stable")
        return [
            (self.feature_names[index], float(self.coefficients[index]))
            for index in order
        ]

    def render(self, top: int = 5) -> str:
        """Human-readable local rationale."""
        lines = [
            f"local explanation (prediction {self.prediction:.3f}, "
            f"local fit R² {self.local_fit_r2:.3f})"
        ]
        for name, weight in self.ranked()[:top]:
            direction = "pushes toward positive" if weight > 0 else "pushes toward negative"
            lines.append(f"  {name}: {weight:+.4f} ({direction})")
        return "\n".join(lines)


class LocalSurrogateExplainer:
    """Perturb-around-the-point weighted linear surrogate.

    Parameters
    ----------
    kernel_width:
        Bandwidth of the Gaussian proximity kernel in standardised
        feature units.
    n_samples:
        Perturbations drawn per explanation.
    scale:
        Per-feature perturbation scales; default: the feature stds of the
        background data supplied at construction.
    """

    def __init__(self, model: Classifier, background,
                 kernel_width: float = 1.0, n_samples: int = 500,
                 l2: float = 1e-3,
                 feature_names: list[str] | None = None):
        self.model = model
        background = np.asarray(background, dtype=np.float64)
        if background.ndim != 2 or len(background) < 2:
            raise DataError("background must be a 2-D matrix with >= 2 rows")
        self._scale = background.std(axis=0)
        self._scale[self._scale == 0.0] = 1.0
        self.kernel_width = kernel_width
        self.n_samples = n_samples
        self.l2 = l2
        self.feature_names = feature_names or [
            f"x{index}" for index in range(background.shape[1])
        ]
        if len(self.feature_names) != background.shape[1]:
            raise DataError("feature_names must match the background width")

    def explain(self, x, rng: np.random.Generator) -> LocalExplanation:
        """Explain the model's probability at one point ``x``."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if len(x) != len(self._scale):
            raise DataError(
                f"x has {len(x)} features, expected {len(self._scale)}"
            )
        noise = rng.standard_normal((self.n_samples, len(x))) * self._scale
        samples = x[None, :] + noise
        samples = np.vstack([x[None, :], samples])
        probabilities = self.model.predict_proba(samples)
        distances = np.linalg.norm(
            (samples - x) / self._scale, axis=1
        ) / np.sqrt(len(x))
        weights = np.exp(-(distances**2) / (self.kernel_width**2))
        surrogate = RidgeRegression(l2=self.l2)
        surrogate.fit(samples, probabilities, sample_weight=weights)
        fitted = surrogate.predict(samples)
        total = np.average(
            (probabilities - np.average(probabilities, weights=weights))**2,
            weights=weights,
        )
        residual = np.average((probabilities - fitted)**2, weights=weights)
        r2 = 1.0 - residual / total if total > 0 else 1.0
        return LocalExplanation(
            feature_names=list(self.feature_names),
            coefficients=surrogate.coef_.copy(),
            intercept=surrogate.intercept_,
            prediction=float(probabilities[0]),
            local_fit_r2=float(r2),
        )
