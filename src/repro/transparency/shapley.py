"""Shapley-value attributions (Q4).

The game-theoretic attribution: a feature's contribution to one
prediction, averaged over all orders in which features could be revealed.
Exact enumeration for small feature counts, Monte-Carlo permutation
sampling (Štrumbelj & Kononenko) otherwise.  Absent features are
marginalised against a background sample.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import Classifier
from repro.parallel import pmap, resolve_n_jobs
from repro.store import (
    array_fingerprint,
    code_fingerprint,
    object_fingerprint,
    resolve_store,
)


@dataclass(frozen=True)
class ShapleyExplanation:
    """Per-feature Shapley values for one prediction."""

    feature_names: list[str]
    values: np.ndarray
    base_value: float
    prediction: float
    method: str

    def ranked(self) -> list[tuple[str, float]]:
        """(name, value) by absolute attribution."""
        order = np.argsort(-np.abs(self.values), kind="stable")
        return [
            (self.feature_names[index], float(self.values[index]))
            for index in order
        ]

    @property
    def additivity_gap(self) -> float:
        """|base + Σvalues − prediction|: ~0 for exact, small for sampled."""
        return abs(self.base_value + float(self.values.sum()) - self.prediction)

    def render(self, top: int = 5) -> str:
        """Human-readable attribution summary."""
        lines = [
            f"Shapley ({self.method}): base {self.base_value:.3f} "
            f"-> prediction {self.prediction:.3f}"
        ]
        for name, value in self.ranked()[:top]:
            lines.append(f"  {name}: {value:+.4f}")
        return "\n".join(lines)


class ShapleyExplainer:
    """Model-agnostic Shapley attribution of P(positive | x).

    Parameters
    ----------
    background:
        Sample used to marginalise "absent" features; 50-200 rows is
        typically enough and keeps evaluation affordable.
    exact_limit:
        Use exact enumeration up to this many features (2^d coalition
        evaluations), Monte-Carlo beyond it.
    """

    def __init__(self, model: Classifier, background,
                 feature_names: list[str] | None = None,
                 exact_limit: int = 10):
        self.model = model
        background = np.asarray(background, dtype=np.float64)
        if background.ndim != 2 or len(background) < 1:
            raise DataError("background must be a non-empty 2-D matrix")
        self._background = background
        self.feature_names = feature_names or [
            f"x{index}" for index in range(background.shape[1])
        ]
        if len(self.feature_names) != background.shape[1]:
            raise DataError("feature_names must match the background width")
        self.exact_limit = exact_limit

    def _coalition_value(self, x: np.ndarray, coalition: tuple[int, ...]) -> float:
        """E[f(x_S, X_!S)] over the background for feature set S."""
        synthetic = self._background.copy()
        for feature in coalition:
            synthetic[:, feature] = x[feature]
        return float(self.model.predict_proba(synthetic).mean())

    def explain(self, x, rng: np.random.Generator | None = None,
                n_permutations: int = 100,
                n_jobs: int | None = None,
                backend: str = "thread",
                store=None) -> ShapleyExplanation:
        """Shapley values of one point (exact or sampled by width).

        ``n_jobs`` fans the sampled permutations out via
        :mod:`repro.parallel` (``None`` defers to ``$REPRO_N_JOBS``);
        permutation orders are pre-drawn from ``rng`` and contributions
        accumulated in permutation order, so the values are bit-identical
        for every ``n_jobs`` and backend.  The exact path stays serial —
        its memoised coalition cache is worth more than parallelism.
        ``store`` memoises the whole explanation keyed on the model's
        content, the background, ``x``, the parameters, and the rng
        state (``None`` defers to ``$REPRO_STORE``).
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        d = self._background.shape[1]
        if len(x) != d:
            raise DataError(f"x has {len(x)} features, expected {d}")
        sampled = d > self.exact_limit
        if sampled and rng is None:
            raise DataError("sampled Shapley needs an rng")

        def compute() -> ShapleyExplanation:
            if not sampled:
                values = self._exact(x)
                method = "exact"
            else:
                values = self._sampled(
                    x, rng, n_permutations, n_jobs, backend
                )
                method = f"sampled({n_permutations})"
            base = self._coalition_value(x, ())
            prediction = self._coalition_value(x, tuple(range(d)))
            return ShapleyExplanation(
                feature_names=list(self.feature_names),
                values=values, base_value=base,
                prediction=prediction, method=method,
            )

        store = resolve_store(store)
        if store is None:
            return compute()
        return store.memoize(
            {
                "stage": "shapley.explain",
                "model": object_fingerprint(self.model),
                "background": array_fingerprint(self._background),
                "x": array_fingerprint(x),
                "feature_names": list(self.feature_names),
                "exact_limit": self.exact_limit,
                "n_permutations": n_permutations if sampled else None,
                "code": code_fingerprint(ShapleyExplainer._sampled
                                         if sampled
                                         else ShapleyExplainer._exact),
            },
            compute, rng=rng if sampled else None,
        )

    def _exact(self, x: np.ndarray) -> np.ndarray:
        d = self._background.shape[1]
        cache: dict[tuple[int, ...], float] = {}

        def value(coalition: tuple[int, ...]) -> float:
            if coalition not in cache:
                cache[coalition] = self._coalition_value(x, coalition)
            return cache[coalition]

        shapley = np.zeros(d)
        others = list(range(d))
        for feature in range(d):
            rest = [other for other in others if other != feature]
            for size in range(len(rest) + 1):
                weight = (
                    math.factorial(size) * math.factorial(d - size - 1)
                    / math.factorial(d)
                )
                for subset in itertools.combinations(rest, size):
                    with_feature = tuple(sorted((*subset, feature)))
                    shapley[feature] += weight * (
                        value(with_feature) - value(tuple(subset))
                    )
        return shapley

    def _permutation_contribution(self, x: np.ndarray,
                                  order: np.ndarray) -> np.ndarray:
        """One permutation's marginal-contribution vector (deterministic)."""
        d = self._background.shape[1]
        contribution = np.zeros(d)
        coalition: list[int] = []
        previous = self._coalition_value(x, ())
        for feature in order:
            coalition.append(int(feature))
            current = self._coalition_value(x, tuple(sorted(coalition)))
            contribution[feature] = current - previous
            previous = current
        return contribution

    def _sampled(self, x: np.ndarray, rng: np.random.Generator,
                 n_permutations: int, n_jobs: int | None,
                 backend: str) -> np.ndarray:
        d = self._background.shape[1]
        # All randomness is drawn here, before any fan-out, in the same
        # order the serial loop always drew it.
        orders = [rng.permutation(d) for _ in range(n_permutations)]
        if resolve_n_jobs(n_jobs) == 1:
            contributions = [
                self._permutation_contribution(x, order) for order in orders
            ]
        else:
            contributions = pmap(
                _ShapleyPermutationTask(self, x), orders,
                n_jobs=n_jobs, backend=backend, name="shapley",
            )
        # In-order accumulation: each feature receives one addend per
        # permutation, in permutation order — the same float operations
        # the serial loop performs, hence bit-identical results.
        shapley = np.zeros(d)
        for contribution in contributions:
            shapley += contribution
        return shapley / n_permutations


class _ShapleyPermutationTask:
    """Picklable worker evaluating one permutation's contributions."""

    __slots__ = ("explainer", "x")

    def __init__(self, explainer: ShapleyExplainer, x: np.ndarray):
        self.explainer = explainer
        self.x = x

    def __call__(self, order: np.ndarray) -> np.ndarray:
        return self.explainer._permutation_contribution(self.x, order)
