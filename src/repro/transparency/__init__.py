"""Transparency pillar (Q4): explanations, surrogates, cards, datasheets."""

from repro.transparency.counterfactual import Counterfactual, find_counterfactual
from repro.transparency.datasheet import Datasheet, build_datasheet
from repro.transparency.importance import ImportanceResult, permutation_importance
from repro.transparency.local import LocalExplanation, LocalSurrogateExplainer
from repro.transparency.model_card import ModelCard, build_model_card
from repro.transparency.partial_dependence import (
    PartialDependence,
    partial_dependence,
)
from repro.transparency.shapley import ShapleyExplainer, ShapleyExplanation
from repro.transparency.surrogate import (
    SurrogateResult,
    fidelity_by_depth,
    fit_surrogate,
)
from repro.transparency.ice import ICEResult, ice_curves

__all__ = [
    "ice_curves",
    "ICEResult",
    "Counterfactual",
    "Datasheet",
    "ImportanceResult",
    "LocalExplanation",
    "LocalSurrogateExplainer",
    "ModelCard",
    "PartialDependence",
    "ShapleyExplainer",
    "ShapleyExplanation",
    "SurrogateResult",
    "build_datasheet",
    "build_model_card",
    "fidelity_by_depth",
    "find_counterfactual",
    "fit_surrogate",
    "partial_dependence",
    "permutation_importance",
]
