"""Permutation feature importance (Q4).

Model-agnostic: shuffle one feature at a time and measure how much the
model's quality drops.  Works on the MLP "black box" exactly as on a
tree, which is the point — transparency tooling must not depend on the
model's goodwill.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import Classifier
from repro.learn.metrics import accuracy, roc_auc


@dataclass(frozen=True)
class ImportanceResult:
    """Per-feature importance with repeat spread."""

    feature_names: list[str]
    importances: np.ndarray
    stds: np.ndarray
    baseline_score: float
    metric: str

    def ranked(self) -> list[tuple[str, float]]:
        """(name, importance) pairs, most important first."""
        order = np.argsort(-self.importances, kind="stable")
        return [
            (self.feature_names[index], float(self.importances[index]))
            for index in order
        ]

    def render(self, top: int = 10) -> str:
        """Human-readable importance table."""
        lines = [f"permutation importance ({self.metric}, baseline "
                 f"{self.baseline_score:.4f})"]
        for name, value in self.ranked()[:top]:
            lines.append(f"  {name}: {value:+.4f}")
        return "\n".join(lines)


def permutation_importance(model: Classifier, X, y,
                           rng: np.random.Generator,
                           n_repeats: int = 5,
                           metric: str = "accuracy",
                           feature_names: list[str] | None = None,
                           ) -> ImportanceResult:
    """Mean score drop when each column is independently shuffled."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or len(X) != len(y):
        raise DataError("X must be 2-D and aligned with y")
    if n_repeats < 1:
        raise DataError("n_repeats must be >= 1")

    def score(matrix: np.ndarray) -> float:
        probabilities = model.predict_proba(matrix)
        if metric == "accuracy":
            return accuracy(y, (probabilities >= 0.5).astype(np.float64))
        if metric == "auc":
            return roc_auc(y, probabilities)
        raise DataError(f"unknown metric {metric!r}")

    baseline = score(X)
    n_features = X.shape[1]
    if feature_names is None:
        feature_names = [f"x{index}" for index in range(n_features)]
    if len(feature_names) != n_features:
        raise DataError("feature_names must match the matrix width")
    drops = np.zeros((n_features, n_repeats))
    for feature in range(n_features):
        for repeat in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, feature] = rng.permutation(shuffled[:, feature])
            drops[feature, repeat] = baseline - score(shuffled)
    return ImportanceResult(
        feature_names=list(feature_names),
        importances=drops.mean(axis=1),
        stds=drops.std(axis=1),
        baseline_score=baseline,
        metric=metric,
    )
