"""Permutation feature importance (Q4).

Model-agnostic: shuffle one feature at a time and measure how much the
model's quality drops.  Works on the MLP "black box" exactly as on a
tree, which is the point — transparency tooling must not depend on the
model's goodwill.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import Classifier
from repro.learn.metrics import accuracy, roc_auc
from repro.parallel import pmap, resolve_n_jobs
from repro.store import array_fingerprint, object_fingerprint, resolve_store
from repro.store.fingerprint import code_fingerprint


@dataclass(frozen=True)
class ImportanceResult:
    """Per-feature importance with repeat spread."""

    feature_names: list[str]
    importances: np.ndarray
    stds: np.ndarray
    baseline_score: float
    metric: str

    def ranked(self) -> list[tuple[str, float]]:
        """(name, importance) pairs, most important first."""
        order = np.argsort(-self.importances, kind="stable")
        return [
            (self.feature_names[index], float(self.importances[index]))
            for index in order
        ]

    def render(self, top: int = 10) -> str:
        """Human-readable importance table."""
        lines = [f"permutation importance ({self.metric}, baseline "
                 f"{self.baseline_score:.4f})"]
        for name, value in self.ranked()[:top]:
            lines.append(f"  {name}: {value:+.4f}")
        return "\n".join(lines)


class _ShuffleScoreTask:
    """Picklable worker: score drop for one (feature, permutation) pair."""

    __slots__ = ("model", "X", "y", "metric", "baseline")

    def __init__(self, model: Classifier, X: np.ndarray, y: np.ndarray,
                 metric: str, baseline: float):
        self.model = model
        self.X = X
        self.y = y
        self.metric = metric
        self.baseline = baseline

    def _score(self, matrix: np.ndarray) -> float:
        probabilities = self.model.predict_proba(matrix)
        if self.metric == "accuracy":
            return accuracy(self.y, (probabilities >= 0.5).astype(np.float64))
        if self.metric == "auc":
            return roc_auc(self.y, probabilities)
        raise DataError(f"unknown metric {self.metric!r}")

    def __call__(self, task: tuple[int, np.ndarray]) -> float:
        feature, permutation = task
        shuffled = self.X.copy()
        shuffled[:, feature] = shuffled[:, feature][permutation]
        return self.baseline - self._score(shuffled)


def permutation_importance(model: Classifier, X, y,
                           rng: np.random.Generator,
                           n_repeats: int = 5,
                           metric: str = "accuracy",
                           feature_names: list[str] | None = None,
                           n_jobs: int | None = None,
                           backend: str = "thread",
                           store=None) -> ImportanceResult:
    """Mean score drop when each column is independently shuffled.

    ``n_jobs`` fans the (feature, repeat) evaluations out via
    :mod:`repro.parallel` (``None`` defers to ``$REPRO_N_JOBS``).  The
    shuffles are pre-drawn from ``rng`` in the serial loop's order and
    drops land in a fixed (feature, repeat) grid, so importances are
    bit-identical for every ``n_jobs`` and backend.  ``store`` memoises
    the result keyed on model content + data + parameters + rng state
    (``None`` defers to ``$REPRO_STORE``); ``n_jobs``/``backend`` stay
    out of the key because results are identical across them.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or len(X) != len(y):
        raise DataError("X must be 2-D and aligned with y")
    if n_repeats < 1:
        raise DataError("n_repeats must be >= 1")
    n_features = X.shape[1]
    if feature_names is None:
        feature_names = [f"x{index}" for index in range(n_features)]
    if len(feature_names) != n_features:
        raise DataError("feature_names must match the matrix width")

    def compute() -> ImportanceResult:
        worker = _ShuffleScoreTask(model, X, y, metric, 0.0)
        baseline = worker._score(X)
        worker.baseline = baseline
        n = len(X)
        # ``rng.permutation(column)`` and ``column[rng.permutation(n)]``
        # consume the same stream and produce the same arrangement, so
        # pre-drawing index permutations here keeps historical results.
        tasks = [
            (feature, rng.permutation(n))
            for feature in range(n_features)
            for _ in range(n_repeats)
        ]
        if resolve_n_jobs(n_jobs) == 1:
            flat = [worker(task) for task in tasks]
        else:
            flat = pmap(worker, tasks, n_jobs=n_jobs, backend=backend,
                        name="importance")
        drops = np.asarray(flat).reshape(n_features, n_repeats)
        return ImportanceResult(
            feature_names=list(feature_names),
            importances=drops.mean(axis=1),
            stds=drops.std(axis=1),
            baseline_score=baseline,
            metric=metric,
        )

    store = resolve_store(store)
    if store is None:
        return compute()
    return store.memoize(
        {
            "stage": "permutation_importance",
            "model": object_fingerprint(model),
            "X": array_fingerprint(X),
            "y": array_fingerprint(y),
            "n_repeats": n_repeats,
            "metric": metric,
            "feature_names": list(feature_names),
            "code": code_fingerprint(permutation_importance),
        },
        compute, rng=rng,
    )
