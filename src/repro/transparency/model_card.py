"""Model cards (Q4).

"Accountability and comprehensibility are essential for transparency" —
a model card is the document that operationalises that: what the model
is, what it was trained on, how well it works (with uncertainty), how
fairly it behaves, and what it must not be used for.  Rendered as
markdown so it ships next to the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accuracy.bootstrap import bootstrap_paired_ci
from repro.data.table import Table
from repro.fairness.report import FairnessReport, audit_model
from repro.learn.metrics import accuracy as accuracy_metric
from repro.learn.metrics import roc_auc
from repro.learn.table_model import TableClassifier
from repro.store import Artifact


@dataclass
class ModelCard(Artifact):
    """A structured, renderable description of one trained model.

    An :class:`~repro.store.Artifact`: ``to_dict``/``to_json`` serialise
    the card and ``fingerprint()`` mints its content hash.
    """

    name: str
    model_type: str
    intended_use: str
    hyperparameters: dict[str, object]
    training_rows: int
    evaluation_rows: int
    metrics: dict[str, str]
    fairness: FairnessReport | None = None
    limitations: list[str] = field(default_factory=list)
    prohibited_uses: list[str] = field(default_factory=list)

    def render(self) -> str:
        """The card as markdown."""
        lines = [f"# Model card: {self.name}", ""]
        lines += [f"**Type:** {self.model_type}",
                  f"**Intended use:** {self.intended_use}", ""]
        lines.append("## Training")
        lines.append(f"- training rows: {self.training_rows}")
        for key, value in self.hyperparameters.items():
            lines.append(f"- {key}: {value}")
        lines += ["", "## Evaluation "
                      f"({self.evaluation_rows} held-out rows)"]
        for key, value in self.metrics.items():
            lines.append(f"- {key}: {value}")
        if self.fairness is not None:
            lines += ["", "## Fairness", "```",
                      self.fairness.render(), "```"]
        if self.limitations:
            lines += ["", "## Limitations"]
            lines += [f"- {item}" for item in self.limitations]
        if self.prohibited_uses:
            lines += ["", "## Prohibited uses"]
            lines += [f"- {item}" for item in self.prohibited_uses]
        return "\n".join(lines)


def build_model_card(model: TableClassifier, train: Table, test: Table,
                     name: str, intended_use: str,
                     rng: np.random.Generator,
                     limitations: list[str] | None = None,
                     prohibited_uses: list[str] | None = None) -> ModelCard:
    """Assemble a card with bootstrap-intervalled metrics and a fairness audit.

    Metrics come with 95% intervals because a card quoting "accuracy
    0.87" without uncertainty fails Q2 while documenting Q4.
    """
    probabilities = model.predict_proba(test)
    decisions = (probabilities >= model.threshold).astype(np.float64)
    labels = model.labels(test)
    acc_ci = bootstrap_paired_ci(labels, decisions, accuracy_metric, rng)
    auc_ci = bootstrap_paired_ci(labels, probabilities, roc_auc, rng)
    fairness = None
    if test.schema.sensitive_names:
        fairness = audit_model(model, test)
    return ModelCard(
        name=name,
        model_type=type(model.estimator).__name__,
        intended_use=intended_use,
        hyperparameters=model.params(),
        training_rows=train.n_rows,
        evaluation_rows=test.n_rows,
        metrics={"accuracy": str(acc_ci), "roc_auc": str(auc_ci)},
        fairness=fairness,
        limitations=list(limitations or ()),
        prohibited_uses=list(prohibited_uses or ()),
    )
