"""Counterfactual explanations (Q4).

"What is the smallest change to this application that would have flipped
the decision?" — the explanation style regulators favour, because it is
actionable.  Greedy coordinate search over standardised feature moves;
``immutable`` marks features the person cannot change (and the search
must not pretend they could).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import Classifier


@dataclass(frozen=True)
class Counterfactual:
    """A found counterfactual point and its provenance."""

    original: np.ndarray
    counterfactual: np.ndarray
    original_probability: float
    counterfactual_probability: float
    changed_features: list[tuple[str, float, float]]
    n_steps: int

    @property
    def sparsity(self) -> int:
        """How many features had to move."""
        return len(self.changed_features)

    @property
    def distance(self) -> float:
        """L2 distance travelled (standardised units are the caller's job)."""
        return float(np.linalg.norm(self.counterfactual - self.original))

    def render(self) -> str:
        """Human-readable 'what would have changed the decision'."""
        lines = [
            f"counterfactual: P {self.original_probability:.3f} -> "
            f"{self.counterfactual_probability:.3f} in {self.n_steps} steps"
        ]
        for name, before, after in self.changed_features:
            lines.append(f"  {name}: {before:.4g} -> {after:.4g}")
        return "\n".join(lines)


def find_counterfactual(model: Classifier, x,
                        feature_names: list[str] | None = None,
                        target_class: float = 1.0,
                        immutable: list[int] | None = None,
                        step_scale=None,
                        max_steps: int = 200,
                        threshold: float = 0.5) -> Counterfactual | None:
    """Greedy coordinate ascent toward the target class.

    Each step tries moving every mutable feature ±1 step (of
    ``step_scale``, default 0.25 per feature) and keeps the move that
    most improves the target-class probability.  Returns ``None`` when
    the search stalls before crossing the threshold — an honest "no small
    change would have helped".
    """
    x = np.asarray(x, dtype=np.float64).ravel().copy()
    d = len(x)
    if feature_names is None:
        feature_names = [f"x{index}" for index in range(d)]
    if len(feature_names) != d:
        raise DataError("feature_names must match x's width")
    blocked = set(immutable or ())
    scales = (np.full(d, 0.25) if step_scale is None
              else np.asarray(step_scale, dtype=np.float64))
    if scales.shape != (d,):
        raise DataError("step_scale must have one entry per feature")

    def probability(point: np.ndarray) -> float:
        value = float(model.predict_proba(point[None, :])[0])
        return value if target_class == 1.0 else 1.0 - value

    original = x.copy()
    original_probability = probability(x)
    current_probability = original_probability
    steps = 0
    while current_probability < threshold and steps < max_steps:
        # Evaluate all candidate single-coordinate moves in one batch.
        candidates = []
        moves = []
        for feature in range(d):
            if feature in blocked or scales[feature] == 0.0:
                continue
            for direction in (1.0, -1.0):
                candidate = x.copy()
                candidate[feature] += direction * scales[feature]
                candidates.append(candidate)
                moves.append(feature)
        if not candidates:
            break
        stacked = np.vstack(candidates)
        probabilities = model.predict_proba(stacked)
        if target_class != 1.0:
            probabilities = 1.0 - probabilities
        best = int(np.argmax(probabilities))
        if probabilities[best] <= current_probability + 1e-12:
            break  # stalled
        x = stacked[best]
        current_probability = float(probabilities[best])
        steps += 1
    if current_probability < threshold:
        return None
    changed = [
        (feature_names[index], float(original[index]), float(x[index]))
        for index in range(d)
        if abs(x[index] - original[index]) > 1e-12
    ]
    final_probability = float(model.predict_proba(x[None, :])[0])
    return Counterfactual(
        original=original, counterfactual=x,
        original_probability=(
            original_probability if target_class == 1.0
            else 1.0 - original_probability
        ),
        counterfactual_probability=(
            final_probability if target_class == 1.0 else 1.0 - final_probability
        ),
        changed_features=changed, n_steps=steps,
    )
