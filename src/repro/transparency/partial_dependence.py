"""Partial-dependence curves (Q4).

The average model response as one feature sweeps its range with all other
features held at their observed values — the standard "what does the
black box think this feature does" plot, numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.learn.base import Classifier


@dataclass(frozen=True)
class PartialDependence:
    """One feature's grid and averaged model response."""

    feature: str
    grid: np.ndarray
    response: np.ndarray

    @property
    def range_effect(self) -> float:
        """max - min of the response: the feature's total leverage."""
        return float(self.response.max() - self.response.min())

    def is_monotone(self, tolerance: float = 1e-9) -> bool:
        """Does the response move in only one direction along the grid?"""
        deltas = np.diff(self.response)
        return bool(
            np.all(deltas >= -tolerance) or np.all(deltas <= tolerance)
        )


def partial_dependence(model: Classifier, X, feature_index: int,
                       grid_size: int = 20,
                       feature_name: str | None = None,
                       ) -> PartialDependence:
    """Average predicted probability over a grid of one feature's values."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataError("X must be 2-D")
    if not 0 <= feature_index < X.shape[1]:
        raise DataError(f"feature_index {feature_index} out of range")
    if grid_size < 2:
        raise DataError("grid_size must be >= 2")
    values = X[:, feature_index]
    grid = np.linspace(values.min(), values.max(), grid_size)
    response = np.empty(grid_size)
    for index, value in enumerate(grid):
        modified = X.copy()
        modified[:, feature_index] = value
        response[index] = float(model.predict_proba(modified).mean())
    name = feature_name if feature_name is not None else f"x{feature_index}"
    return PartialDependence(feature=name, grid=grid, response=response)
