"""Local differential privacy: the trust-nobody regime (Q3).

§2's trust argument — "if individuals do not trust the data science
pipeline … they will not share their data" — is sharpest when even the
*collector* is untrusted.  Local DP answers it: each person randomises
their own value before sending, and the aggregator debiases.

Implemented: the unary-encoding frequency oracle (a.k.a. basic RAPPOR)
for categorical attributes, generalising randomised response beyond
binary, plus an aggregate error bound for sizing deployments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError


@dataclass(frozen=True)
class FrequencyEstimate:
    """Debiased category frequencies from locally-randomised reports."""

    categories: tuple
    estimates: np.ndarray
    n_reports: int
    epsilon: float

    def as_dict(self) -> dict[object, float]:
        """{category: estimated frequency} (clipped to [0, 1])."""
        clipped = np.clip(self.estimates, 0.0, 1.0)
        total = clipped.sum()
        if total > 0:
            clipped = clipped / total
        return dict(zip(self.categories, clipped.tolist()))


class UnaryEncodingOracle:
    """Symmetric unary-encoding local-DP frequency oracle.

    Each user one-hot encodes their value over the public category list,
    then flips each bit: a 1 is reported truthfully with probability
    ``p = e^(ε/2) / (e^(ε/2) + 1)``, a 0 is reported as 1 with
    probability ``q = 1 - p``.  This symmetric choice satisfies ε-LDP and
    admits the standard unbiased estimator.
    """

    def __init__(self, categories: list, epsilon: float):
        if len(categories) < 2:
            raise DataError("need at least two categories")
        if len(set(categories)) != len(categories):
            raise DataError("categories must be distinct")
        if epsilon <= 0:
            raise DataError("epsilon must be positive")
        self.categories = tuple(categories)
        self.epsilon = epsilon
        half = np.exp(epsilon / 2.0)
        self._p = half / (half + 1.0)
        self._q = 1.0 - self._p

    # -- client side ----------------------------------------------------------

    def randomize(self, value, rng: np.random.Generator) -> np.ndarray:
        """One user's privatised report (a noisy one-hot bit vector)."""
        if value not in self.categories:
            raise DataError(f"value {value!r} not in the public category list")
        truth = np.asarray(
            [1.0 if category == value else 0.0 for category in self.categories]
        )
        keep = rng.random(len(truth)) < np.where(truth == 1.0, self._p, self._q)
        return keep.astype(np.float64)

    def randomize_all(self, values, rng: np.random.Generator) -> np.ndarray:
        """Privatised reports for a population, shape (n, n_categories)."""
        values = np.asarray(values)
        index = {category: i for i, category in enumerate(self.categories)}
        positions = np.asarray([index.get(value, -1) for value in values])
        if (positions < 0).any():
            raise DataError("some values are outside the public category list")
        truth = np.zeros((len(values), len(self.categories)))
        truth[np.arange(len(values)), positions] = 1.0
        flip_to_one = np.where(truth == 1.0, self._p, self._q)
        return (rng.random(truth.shape) < flip_to_one).astype(np.float64)

    # -- server side -----------------------------------------------------------

    def estimate(self, reports: np.ndarray) -> FrequencyEstimate:
        """Debiased frequency estimates from stacked reports."""
        reports = np.asarray(reports, dtype=np.float64)
        if reports.ndim != 2 or reports.shape[1] != len(self.categories):
            raise DataError(
                f"reports must be (n, {len(self.categories)}), got {reports.shape}"
            )
        n = len(reports)
        if n == 0:
            raise DataError("no reports to aggregate")
        observed = reports.mean(axis=0)
        estimates = (observed - self._q) / (self._p - self._q)
        return FrequencyEstimate(
            categories=self.categories, estimates=estimates,
            n_reports=n, epsilon=self.epsilon,
        )

    def expected_error(self, n_reports: int) -> float:
        """Std of one category's estimate at ``n_reports`` users.

        Worst-case (true frequency near 0) binomial variance of the
        debiased estimator — the number a deployment sizes itself with.
        """
        if n_reports < 1:
            raise DataError("n_reports must be >= 1")
        variance = self._q * (1.0 - self._q) / (
            n_reports * (self._p - self._q) ** 2
        )
        return float(np.sqrt(variance))
