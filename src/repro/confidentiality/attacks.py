"""Attack simulators: measuring what leaks (Q3, experiment E8).

§2-Q1 of the paper's worry list: "Confidential data may be shared
unintentionally or abused by third parties."  You cannot score a defence
without an attacker, so two are provided:

* **linkage attack** — the Sweeney-style join: an adversary holding an
  auxiliary table with quasi-identifiers tries to re-identify rows of a
  released table.  Reports the unique-match (confident re-identification)
  rate.
* **membership inference** — the DP distinguishing game on a released
  noisy mean: how much better than coin-flipping can an adversary decide
  whether a target record was in the dataset?  Advantage shrinks with ε.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.exceptions import DataError


@dataclass(frozen=True)
class LinkageAttackResult:
    """Outcome of a quasi-identifier join attack."""

    n_targets: int
    n_unique_matches: int
    n_correct: int
    mean_candidates: float

    @property
    def reidentification_rate(self) -> float:
        """Fraction of targets confidently and correctly re-identified."""
        return self.n_correct / self.n_targets if self.n_targets else 0.0


def linkage_attack(released: Table, auxiliary: Table,
                   quasi_identifiers: list[str],
                   released_id: str, auxiliary_id: str,
                   ) -> LinkageAttackResult:
    """Join ``auxiliary`` against ``released`` on quasi-identifiers.

    A target is re-identified when its QI combination matches exactly one
    released row *and* that row really is the target (checked against the
    hidden id columns, which the attacker would not have — they measure
    the attack, they do not power it).
    """
    for name in quasi_identifiers:
        if name not in released or name not in auxiliary:
            raise DataError(f"quasi-identifier {name!r} missing from a table")
    released_keys: dict[tuple, list[int]] = {}
    released_columns = released.columns(quasi_identifiers)
    for row_index in range(released.n_rows):
        key = tuple(column[row_index] for column in released_columns)
        released_keys.setdefault(key, []).append(row_index)

    auxiliary_columns = auxiliary.columns(quasi_identifiers)
    released_ids = released.column(released_id)
    auxiliary_ids = auxiliary.column(auxiliary_id)
    unique_matches = 0
    correct = 0
    candidate_counts = []
    for row_index in range(auxiliary.n_rows):
        key = tuple(column[row_index] for column in auxiliary_columns)
        candidates = released_keys.get(key, [])
        candidate_counts.append(len(candidates))
        if len(candidates) == 1:
            unique_matches += 1
            if released_ids[candidates[0]] == auxiliary_ids[row_index]:
                correct += 1
    return LinkageAttackResult(
        n_targets=auxiliary.n_rows,
        n_unique_matches=unique_matches,
        n_correct=correct,
        mean_candidates=float(np.mean(candidate_counts)) if candidate_counts else 0.0,
    )


@dataclass(frozen=True)
class MembershipInferenceResult:
    """Outcome of the DP distinguishing game."""

    epsilon: float
    n_trials: int
    attacker_accuracy: float

    @property
    def advantage(self) -> float:
        """``2·accuracy − 1``: 0 = guessing, 1 = certain identification."""
        return 2.0 * self.attacker_accuracy - 1.0


def membership_inference_on_mean(values, target_value: float, epsilon: float,
                                 rng: np.random.Generator,
                                 lower: float, upper: float,
                                 n_trials: int = 500,
                                 ) -> MembershipInferenceResult:
    """Distinguishing game against an ε-DP released mean.

    Each trial: flip a fair coin to include/exclude the target record,
    release the Laplace-noised clipped mean, and let a likelihood-ratio
    attacker (who knows everything except the coin) guess.  The measured
    advantage is bounded by ``(e^ε − 1)/(e^ε + 1)``.
    """
    if lower >= upper:
        raise DataError("need lower < upper bounds")
    base = np.clip(np.asarray(values, dtype=np.float64), lower, upper)
    target = float(np.clip(target_value, lower, upper))
    n_with = len(base) + 1
    mean_with = (base.sum() + target) / n_with
    mean_without = base.sum() / len(base) if len(base) else 0.0
    # Sensitivity of the clipped mean on the fixed-size 'with' dataset.
    scale = (upper - lower) / (n_with * epsilon)
    correct = 0
    for _ in range(n_trials):
        included = rng.random() < 0.5
        true_mean = mean_with if included else mean_without
        release = true_mean + rng.laplace(0.0, scale)
        # Likelihood-ratio decision between the two hypotheses.
        log_like_with = -abs(release - mean_with) / scale
        log_like_without = -abs(release - mean_without) / scale
        guess = log_like_with > log_like_without
        if guess == included:
            correct += 1
    return MembershipInferenceResult(
        epsilon=epsilon, n_trials=n_trials,
        attacker_accuracy=correct / n_trials,
    )


def theoretical_membership_advantage(epsilon: float) -> float:
    """Upper bound on the distinguishing advantage under ε-DP."""
    return (np.exp(epsilon) - 1.0) / (np.exp(epsilon) + 1.0)
