"""Differentially private learning (Q3, experiment E7).

Two standard routes to an (ε[, δ])-DP classifier:

* **output perturbation** (Chaudhuri et al. 2011) — train a strongly
  convex L2-regularised logistic regression on rows clipped to unit
  norm, then add Laplace noise scaled to the solution's sensitivity
  ``2 / (n · λ)``.
* **noisy gradient descent** (DP-SGD-style, full-batch) — clip
  per-example gradients, add Gaussian noise each step, account with the
  naive composition of the Gaussian mechanism.

Both charge a :class:`PrivacyAccountant` so the training run appears in
the same ledger as the queries.
"""

from __future__ import annotations

import numpy as np

from repro.confidentiality.accountant import PrivacyAccountant
from repro.confidentiality.mechanisms import gaussian_sigma
from repro.data.synth.base import sigmoid
from repro.exceptions import DataError
from repro.learn.base import Classifier, check_binary_labels, check_matrix
from repro.learn.linear import LogisticRegression


def clip_rows(X: np.ndarray, max_norm: float = 1.0) -> np.ndarray:
    """Scale each row to L2 norm at most ``max_norm`` (sensitivity control)."""
    X = np.asarray(X, dtype=np.float64)
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    factors = np.minimum(1.0, max_norm / np.maximum(norms, 1e-12))
    return X * factors


class OutputPerturbationLogisticRegression(Classifier):
    """ε-DP logistic regression via output perturbation.

    For L2-regularised logistic loss on unit-norm rows, the L2
    sensitivity of the minimiser is ``2 / (n·λ)``; adding Laplace-type
    noise (gamma-norm spherical) of scale ``sensitivity/ε`` yields ε-DP.
    """

    def __init__(self, epsilon: float, l2: float = 1.0,
                 accountant: PrivacyAccountant | None = None,
                 seed: int = 0):
        if epsilon <= 0:
            raise DataError("epsilon must be positive")
        if l2 <= 0:
            raise DataError("output perturbation requires l2 > 0")
        self.epsilon = epsilon
        self.l2 = l2
        self.accountant = accountant
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y, sample_weight=None) -> "OutputPerturbationLogisticRegression":
        """Train non-privately on clipped rows, then perturb the weights."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if sample_weight is not None:
            raise DataError("sample weights change sensitivity; unsupported")
        if self.accountant is not None:
            self.accountant.spend(self.epsilon, label="dp_logreg.output_perturbation")
        clipped = clip_rows(X)
        # Chaudhuri's analysis has lambda as the per-example penalty; our
        # solver uses an unnormalised total penalty, so convert.
        base = LogisticRegression(l2=self.l2 * len(y))
        base.fit(clipped, y)
        rng = np.random.default_rng(self.seed)
        sensitivity = 2.0 / (len(y) * self.l2)
        # Spherical noise with Gamma-distributed norm: density ∝ exp(-ε‖b‖/Δ).
        direction = rng.standard_normal(X.shape[1])
        direction /= max(np.linalg.norm(direction), 1e-12)
        magnitude = rng.gamma(shape=X.shape[1], scale=sensitivity / self.epsilon)
        self.coef_ = base.coef_ + magnitude * direction
        self.intercept_ = float(base.intercept_)
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Probabilities from the perturbed weights (rows are re-clipped)."""
        self._require_fitted()
        clipped = clip_rows(check_matrix(X))
        return np.asarray(sigmoid(clipped @ self.coef_ + self.intercept_))


class NoisyGradientLogisticRegression(Classifier):
    """(ε, δ)-DP logistic regression via noisy full-batch gradient descent.

    Per-example gradients are norm-clipped to ``clip_norm``; each of the
    ``n_steps`` steps adds Gaussian noise calibrated so the *per-step*
    privacy cost is (ε/k, δ/k) — naive composition, deliberately simple
    and auditable.  The ablation bench contrasts this with the analytic
    budget split.
    """

    def __init__(self, epsilon: float, delta: float = 1e-5,
                 n_steps: int = 50, learning_rate: float = 0.5,
                 clip_norm: float = 1.0, l2: float = 1e-3,
                 accountant: PrivacyAccountant | None = None,
                 seed: int = 0):
        if epsilon <= 0 or not 0 < delta < 1:
            raise DataError("need epsilon > 0 and delta in (0, 1)")
        if n_steps < 1:
            raise DataError("n_steps must be >= 1")
        self.epsilon = epsilon
        self.delta = delta
        self.n_steps = n_steps
        self.learning_rate = learning_rate
        self.clip_norm = clip_norm
        self.l2 = l2
        self.accountant = accountant
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y, sample_weight=None) -> "NoisyGradientLogisticRegression":
        """Noisy projected gradient descent on the logistic loss."""
        X = check_matrix(X)
        y = check_binary_labels(y)
        if sample_weight is not None:
            raise DataError("sample weights change sensitivity; unsupported")
        if self.accountant is not None:
            self.accountant.spend(
                self.epsilon, self.delta, label="dp_logreg.noisy_gd"
            )
        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        step_epsilon = self.epsilon / self.n_steps
        step_delta = self.delta / self.n_steps
        # Mean-gradient sensitivity: one example's clipped gradient / n.
        sigma = gaussian_sigma(2.0 * self.clip_norm / n, step_epsilon, step_delta)
        theta = np.zeros(d + 1)
        design = np.hstack([X, np.ones((n, 1))])
        for _ in range(self.n_steps):
            z = design @ theta
            residual = np.asarray(sigmoid(z)) - y
            per_example = design * residual[:, None]
            norms = np.linalg.norm(per_example, axis=1, keepdims=True)
            factors = np.minimum(1.0, self.clip_norm / np.maximum(norms, 1e-12))
            gradient = (per_example * factors).mean(axis=0)
            gradient += self.l2 * np.append(theta[:-1], 0.0)
            noise = rng.normal(0.0, sigma, size=d + 1)
            theta -= self.learning_rate * (gradient + noise)
        self.coef_ = theta[:-1]
        self.intercept_ = float(theta[-1])
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Probabilities from the privately learned weights."""
        self._require_fitted()
        X = check_matrix(X)
        return np.asarray(sigmoid(X @ self.coef_ + self.intercept_))
