"""Differential-privacy mechanisms (Q3).

The paper cites Dwork (2011) and asks for "techniques that work under a
strict privacy budget".  These are the primitives the budget is spent on:

* Laplace mechanism — ε-DP for bounded-sensitivity numeric queries.
* Gaussian mechanism — (ε, δ)-DP, composes gracefully.
* Exponential mechanism — ε-DP selection among arbitrary candidates.
* Randomised response — the oldest local-DP mechanism, per-record.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError


def _check_positive(value: float, name: str) -> float:
    if value <= 0:
        raise DataError(f"{name} must be positive, got {value}")
    return float(value)


def laplace_noise(scale: float, rng: np.random.Generator,
                  size: int | tuple = ()) -> np.ndarray | float:
    """Zero-centred Laplace noise with the given scale."""
    _check_positive(scale, "scale")
    return rng.laplace(0.0, scale, size)


def laplace_mechanism(true_value: float, sensitivity: float, epsilon: float,
                      rng: np.random.Generator) -> float:
    """ε-DP release of a scalar with the given L1 sensitivity."""
    _check_positive(sensitivity, "sensitivity")
    _check_positive(epsilon, "epsilon")
    return float(true_value + rng.laplace(0.0, sensitivity / epsilon))


def gaussian_sigma(sensitivity: float, epsilon: float, delta: float) -> float:
    """Classic analytic noise level for the (ε, δ) Gaussian mechanism.

    σ = sensitivity · sqrt(2 ln(1.25/δ)) / ε  (requires ε ≤ 1 for the
    classical analysis; larger ε is accepted but conservative).
    """
    _check_positive(sensitivity, "sensitivity")
    _check_positive(epsilon, "epsilon")
    if not 0.0 < delta < 1.0:
        raise DataError(f"delta must be in (0, 1), got {delta}")
    return sensitivity * np.sqrt(2.0 * np.log(1.25 / delta)) / epsilon


def gaussian_mechanism(true_value: float, sensitivity: float, epsilon: float,
                       delta: float, rng: np.random.Generator) -> float:
    """(ε, δ)-DP release of a scalar with the given L2 sensitivity."""
    sigma = gaussian_sigma(sensitivity, epsilon, delta)
    return float(true_value + rng.normal(0.0, sigma))


def exponential_mechanism(candidates: list, utilities,
                          sensitivity: float, epsilon: float,
                          rng: np.random.Generator):
    """ε-DP selection: sample candidate c with P ∝ exp(ε·u(c)/(2·Δu))."""
    utilities = np.asarray(utilities, dtype=np.float64)
    if len(candidates) != len(utilities) or len(candidates) == 0:
        raise DataError("candidates and utilities must be non-empty and aligned")
    _check_positive(sensitivity, "sensitivity")
    _check_positive(epsilon, "epsilon")
    logits = epsilon * utilities / (2.0 * sensitivity)
    logits -= logits.max()
    probabilities = np.exp(logits)
    probabilities /= probabilities.sum()
    index = rng.choice(len(candidates), p=probabilities)
    return candidates[index]


def randomized_response(values, epsilon: float,
                        rng: np.random.Generator) -> np.ndarray:
    """Local ε-DP release of binary values.

    Each bit is kept with probability e^ε/(1+e^ε) and flipped otherwise —
    Warner's classic survey design, the mechanism an individual can run
    before sharing anything.
    """
    _check_positive(epsilon, "epsilon")
    values = np.asarray(values, dtype=np.float64)
    if not np.all(np.isin(np.unique(values), (0.0, 1.0))):
        raise DataError("randomized response expects 0/1 values")
    keep_probability = np.exp(epsilon) / (1.0 + np.exp(epsilon))
    keep = rng.random(values.shape) < keep_probability
    return np.where(keep, values, 1.0 - values)


def randomized_response_estimate(noisy_values, epsilon: float) -> float:
    """Debiased population rate from randomised-response bits."""
    _check_positive(epsilon, "epsilon")
    noisy_values = np.asarray(noisy_values, dtype=np.float64)
    if len(noisy_values) == 0:
        raise DataError("no responses to aggregate")
    keep_probability = np.exp(epsilon) / (1.0 + np.exp(epsilon))
    observed = float(noisy_values.mean())
    return (observed - (1.0 - keep_probability)) / (2.0 * keep_probability - 1.0)
