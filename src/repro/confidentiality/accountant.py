"""The privacy-budget accountant (Q3).

"Techniques that work under a *strict privacy budget*" need someone
keeping the books.  The accountant is that someone: every DP release
must be charged before it happens, over-budget requests raise
:class:`~repro.exceptions.PrivacyBudgetError`, and the ledger itself is
an audit artefact the FACT report embeds.

Two composition accountants are provided:

* **basic** — ε's add up (tight for few queries);
* **advanced** — Dwork-Roth advanced composition: k queries at ε₀ each
  cost ``ε₀·sqrt(2k·ln(1/δ')) + k·ε₀·(e^{ε₀}−1)`` overall, buying many
  more queries at the same total budget (ablation A1).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.exceptions import DataError, PrivacyBudgetError


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded budget expenditure."""

    label: str
    epsilon: float
    delta: float


class PrivacyAccountant:
    """Tracks (ε, δ) expenditure under basic composition.

    Thread-safe: :meth:`spend` holds an internal lock across the
    afford-check and the ledger append, so concurrent spenders (e.g. the
    :mod:`repro.serve` worker pool) cannot race the ledger past the
    budget.
    """

    def __init__(self, epsilon_budget: float, delta_budget: float = 0.0):
        if epsilon_budget <= 0:
            raise DataError("epsilon_budget must be positive")
        if delta_budget < 0:
            raise DataError("delta_budget must be non-negative")
        self.epsilon_budget = float(epsilon_budget)
        self.delta_budget = float(delta_budget)
        self._ledger: list[LedgerEntry] = []
        self._lock = threading.RLock()

    # -- bookkeeping ------------------------------------------------------------

    @property
    def ledger(self) -> list[LedgerEntry]:
        """All recorded expenditures, in order."""
        with self._lock:
            return list(self._ledger)

    @property
    def epsilon_spent(self) -> float:
        """Total ε charged so far."""
        return sum(entry.epsilon for entry in self._ledger)

    @property
    def delta_spent(self) -> float:
        """Total δ charged so far."""
        return sum(entry.delta for entry in self._ledger)

    @property
    def epsilon_remaining(self) -> float:
        """Unspent ε."""
        return self.epsilon_budget - self.epsilon_spent

    def can_afford(self, epsilon: float, delta: float = 0.0) -> bool:
        """Would charging (ε, δ) stay within budget?"""
        return (
            self.epsilon_spent + epsilon <= self.epsilon_budget + 1e-12
            and self.delta_spent + delta <= self.delta_budget + 1e-15
        )

    def remaining(self) -> float:
        """Unspent ε (alias of :attr:`epsilon_remaining`, lock-consistent)."""
        with self._lock:
            return self.epsilon_remaining

    def can_spend(self, epsilon: float, delta: float = 0.0) -> bool:
        """Non-raising affordability probe.

        Unlike :meth:`can_afford` (which :class:`AdvancedAccountant`
        overrides to *raise* on a mismatched per-query ε), this always
        answers with a boolean — what an admission controller wants.
        """
        with self._lock:
            try:
                return self.can_afford(epsilon, delta)
            except DataError:
                return False

    def spend(self, epsilon: float, delta: float = 0.0,
              label: str = "query") -> LedgerEntry:
        """Charge the budget or raise :class:`PrivacyBudgetError`."""
        if epsilon <= 0:
            raise DataError("spent epsilon must be positive")
        with self._lock:
            if not self.can_afford(epsilon, delta):
                raise PrivacyBudgetError(
                    f"budget exhausted: requested ε={epsilon:.4g} δ={delta:.2g} "
                    f"with ε_remaining={self.epsilon_remaining:.4g}"
                )
            entry = LedgerEntry(label=label, epsilon=float(epsilon),
                                delta=float(delta))
            self._ledger.append(entry)
        telemetry = obs.get()
        if telemetry is not None:
            telemetry.metrics.counter("privacy.queries").inc()
            telemetry.metrics.gauge("privacy.epsilon_spent").set(
                self.epsilon_spent
            )
            telemetry.metrics.gauge("privacy.epsilon_remaining").set(
                self.epsilon_remaining
            )
            telemetry.metrics.gauge("privacy.delta_spent").set(
                self.delta_spent
            )
        return entry

    def render_ledger(self) -> str:
        """Human-readable audit trail of the budget."""
        lines = [
            f"privacy ledger: ε {self.epsilon_spent:.4g}/{self.epsilon_budget:.4g}"
            f" spent, δ {self.delta_spent:.2g}/{self.delta_budget:.2g}"
        ]
        for entry in self._ledger:
            lines.append(f"  {entry.label}: ε={entry.epsilon:.4g} δ={entry.delta:.2g}")
        return "\n".join(lines)


def advanced_composition_epsilon(per_query_epsilon: float, n_queries: int,
                                 delta_slack: float) -> float:
    """Total ε of k queries at ε₀ under advanced composition."""
    if per_query_epsilon <= 0 or n_queries < 1:
        raise DataError("need positive per-query epsilon and n_queries >= 1")
    if not 0.0 < delta_slack < 1.0:
        raise DataError("delta_slack must be in (0, 1)")
    eps0, k = per_query_epsilon, n_queries
    return (
        eps0 * np.sqrt(2.0 * k * np.log(1.0 / delta_slack))
        + k * eps0 * (np.exp(eps0) - 1.0)
    )


def max_queries_basic(epsilon_budget: float, per_query_epsilon: float) -> int:
    """How many ε₀ queries basic composition affords."""
    if per_query_epsilon <= 0:
        raise DataError("per_query_epsilon must be positive")
    return int(np.floor(epsilon_budget / per_query_epsilon + 1e-12))


def max_queries_advanced(epsilon_budget: float, per_query_epsilon: float,
                         delta_slack: float) -> int:
    """How many ε₀ queries advanced composition affords at total budget.

    Monotone in k, so binary search.
    """
    if advanced_composition_epsilon(per_query_epsilon, 1, delta_slack) > epsilon_budget:
        return 0
    low, high = 1, 2
    while (advanced_composition_epsilon(per_query_epsilon, high, delta_slack)
           <= epsilon_budget):
        high *= 2
        if high > 10**9:
            break
    while low < high:
        mid = (low + high + 1) // 2
        if (advanced_composition_epsilon(per_query_epsilon, mid, delta_slack)
                <= epsilon_budget):
            low = mid
        else:
            high = mid - 1
    return low


class AdvancedAccountant(PrivacyAccountant):
    """Accountant that charges homogeneous queries via advanced composition.

    Assumes all queries share ``per_query_epsilon``; the effective total
    is recomputed as queries accumulate, so the budget check reflects the
    sqrt(k) growth rather than the linear one.
    """

    def __init__(self, epsilon_budget: float, per_query_epsilon: float,
                 delta_slack: float):
        super().__init__(epsilon_budget, delta_budget=delta_slack)
        if per_query_epsilon <= 0:
            raise DataError("per_query_epsilon must be positive")
        self.per_query_epsilon = float(per_query_epsilon)
        self.delta_slack = float(delta_slack)

    @property
    def epsilon_spent(self) -> float:
        """Effective ε under advanced composition of the ledger."""
        k = len(self._ledger)
        if k == 0:
            return 0.0
        return float(advanced_composition_epsilon(
            self.per_query_epsilon, k, self.delta_slack
        ))

    def can_afford(self, epsilon: float, delta: float = 0.0) -> bool:
        """Check the k+1-query effective total against the budget."""
        if abs(epsilon - self.per_query_epsilon) > 1e-9:
            raise DataError(
                "AdvancedAccountant only charges its fixed per-query epsilon"
            )
        prospective = advanced_composition_epsilon(
            self.per_query_epsilon, len(self._ledger) + 1, self.delta_slack
        )
        return prospective <= self.epsilon_budget + 1e-12

    @property
    def delta_spent(self) -> float:
        """The δ' slack consumed by the composition theorem."""
        return self.delta_slack if self._ledger else 0.0
