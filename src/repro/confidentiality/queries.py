"""Budgeted DP queries over arrays and tables (Q3).

Each query charges a :class:`~repro.confidentiality.accountant.PrivacyAccountant`
*before* touching the data — "answer questions without revealing secrets"
with the spend visible in the ledger.  Numeric queries require explicit
value bounds: sensitivity comes from declared bounds, never from the data
itself (peeking at the data to set bounds would leak).
"""

from __future__ import annotations

import numpy as np

from repro.confidentiality.accountant import PrivacyAccountant
from repro.confidentiality.mechanisms import (
    exponential_mechanism,
    laplace_mechanism,
)
from repro.exceptions import DataError


def _clip(values, lower: float, upper: float) -> np.ndarray:
    if lower >= upper:
        raise DataError(f"need lower < upper, got [{lower}, {upper}]")
    return np.clip(np.asarray(values, dtype=np.float64), lower, upper)


def _check_epsilon(epsilon: float) -> float:
    """Uniform ε validation shared by every ``dp_*`` entry point.

    Each query rejects a non-positive ε up front with one consistent
    message, instead of whatever the first mechanism hit would say.
    """
    if not epsilon > 0:
        raise DataError(f"epsilon must be positive, got {epsilon}")
    return float(epsilon)


def dp_count(n: int, epsilon: float, accountant: PrivacyAccountant,
             rng: np.random.Generator, label: str = "count") -> float:
    """ε-DP row count (sensitivity 1), non-negative by post-processing."""
    epsilon = _check_epsilon(epsilon)
    accountant.spend(epsilon, label=label)
    noisy = laplace_mechanism(float(n), 1.0, epsilon, rng)
    return max(0.0, noisy)


def dp_sum(values, lower: float, upper: float, epsilon: float,
           accountant: PrivacyAccountant, rng: np.random.Generator,
           label: str = "sum") -> float:
    """ε-DP sum of values clipped to [lower, upper]."""
    epsilon = _check_epsilon(epsilon)
    accountant.spend(epsilon, label=label)
    clipped = _clip(values, lower, upper)
    sensitivity = max(abs(lower), abs(upper))
    return laplace_mechanism(float(clipped.sum()), sensitivity, epsilon, rng)


def dp_mean(values, lower: float, upper: float, epsilon: float,
            accountant: PrivacyAccountant, rng: np.random.Generator,
            label: str = "mean") -> float:
    """ε-DP mean: half the budget on the sum, half on the count.

    The quotient is clamped back into the declared bounds (free
    post-processing).
    """
    epsilon = _check_epsilon(epsilon)
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        raise DataError("cannot take the mean of no values")
    half = epsilon / 2.0
    noisy_sum = dp_sum(values, lower, upper, half, accountant, rng,
                       label=f"{label}.sum")
    noisy_count = dp_count(len(values), half, accountant, rng,
                           label=f"{label}.count")
    if noisy_count < 1.0:
        noisy_count = 1.0
    return float(np.clip(noisy_sum / noisy_count, lower, upper))


def dp_histogram(values, bins: list, epsilon: float,
                 accountant: PrivacyAccountant, rng: np.random.Generator,
                 label: str = "histogram") -> dict[object, float]:
    """ε-DP histogram over disjoint categories.

    One record lands in exactly one bin, so the whole histogram costs a
    single ε (parallel composition) — charged once, noise added per bin.
    """
    epsilon = _check_epsilon(epsilon)
    if not bins:
        raise DataError("bins must be non-empty")
    accountant.spend(epsilon, label=label)
    values = np.asarray(values)
    result: dict[object, float] = {}
    for bin_value in bins:
        count = float(np.sum(values == bin_value))
        result[bin_value] = max(
            0.0, laplace_mechanism(count, 1.0, epsilon, rng)
        )
    return result


def dp_quantile(values, q: float, lower: float, upper: float,
                epsilon: float, accountant: PrivacyAccountant,
                rng: np.random.Generator, n_candidates: int = 100,
                label: str = "quantile") -> float:
    """ε-DP quantile via the exponential mechanism.

    Candidates form a grid over [lower, upper]; the utility of candidate
    c is minus the distance between rank(c) and the target rank, whose
    sensitivity is 1.
    """
    epsilon = _check_epsilon(epsilon)
    if not 0.0 <= q <= 1.0:
        raise DataError(f"q must be in [0, 1], got {q}")
    accountant.spend(epsilon, label=label)
    clipped = _clip(values, lower, upper)
    candidates = np.linspace(lower, upper, n_candidates).tolist()
    target_rank = q * len(clipped)
    utilities = [
        -abs(float(np.sum(clipped <= candidate)) - target_rank)
        for candidate in candidates
    ]
    return float(exponential_mechanism(
        candidates, utilities, sensitivity=1.0, epsilon=epsilon, rng=rng
    ))
