"""Confidentiality pillar (Q3): DP, anonymity, pseudonyms, attacks, risk."""

from repro.confidentiality.accountant import (
    AdvancedAccountant,
    LedgerEntry,
    PrivacyAccountant,
    advanced_composition_epsilon,
    max_queries_advanced,
    max_queries_basic,
)
from repro.confidentiality.anonymity import (
    MondrianAnonymizer,
    equivalence_classes,
    generalization_information_loss,
    k_anonymity_level,
    l_diversity_level,
    t_closeness_level,
)
from repro.confidentiality.attacks import (
    LinkageAttackResult,
    MembershipInferenceResult,
    linkage_attack,
    membership_inference_on_mean,
    theoretical_membership_advantage,
)
from repro.confidentiality.dp_learn import (
    NoisyGradientLogisticRegression,
    OutputPerturbationLogisticRegression,
    clip_rows,
)
from repro.confidentiality.mechanisms import (
    exponential_mechanism,
    gaussian_mechanism,
    gaussian_sigma,
    laplace_mechanism,
    laplace_noise,
    randomized_response,
    randomized_response_estimate,
)
from repro.confidentiality.pseudonym import (
    Pseudonymizer,
    drop_identifiers,
    redact_for_release,
)
from repro.confidentiality.queries import (
    dp_count,
    dp_histogram,
    dp_mean,
    dp_quantile,
    dp_sum,
)
from repro.confidentiality.risk import (
    RiskProfile,
    assess_risk,
    qi_class_counts,
    risk_from_counts,
    risk_reduction,
)
from repro.confidentiality.synthesis import (
    MarginalSynthesizer,
    marginal_total_variation,
)
from repro.confidentiality.local_dp import (
    FrequencyEstimate,
    UnaryEncodingOracle,
)

__all__ = [
    "UnaryEncodingOracle",
    "FrequencyEstimate",
    "marginal_total_variation",
    "MarginalSynthesizer",
    "AdvancedAccountant",
    "LedgerEntry",
    "LinkageAttackResult",
    "MembershipInferenceResult",
    "MondrianAnonymizer",
    "NoisyGradientLogisticRegression",
    "OutputPerturbationLogisticRegression",
    "PrivacyAccountant",
    "Pseudonymizer",
    "RiskProfile",
    "advanced_composition_epsilon",
    "assess_risk",
    "clip_rows",
    "dp_count",
    "dp_histogram",
    "dp_mean",
    "dp_quantile",
    "dp_sum",
    "drop_identifiers",
    "equivalence_classes",
    "exponential_mechanism",
    "gaussian_mechanism",
    "gaussian_sigma",
    "generalization_information_loss",
    "k_anonymity_level",
    "l_diversity_level",
    "laplace_mechanism",
    "laplace_noise",
    "linkage_attack",
    "max_queries_advanced",
    "max_queries_basic",
    "membership_inference_on_mean",
    "qi_class_counts",
    "randomized_response",
    "randomized_response_estimate",
    "redact_for_release",
    "risk_from_counts",
    "risk_reduction",
    "t_closeness_level",
    "theoretical_membership_advantage",
]
