"""Syntactic anonymity: k-anonymity (Mondrian), l-diversity, t-closeness (Q3).

DP protects query answers; anonymisation protects *published tables*.
The Mondrian partitioner generalises quasi-identifiers until every row is
indistinguishable from at least k-1 others; the diversity/closeness
checks guard against the classic attribute-disclosure attacks that
k-anonymity alone permits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import ColumnType, categorical
from repro.data.table import Table
from repro.exceptions import AnonymityError


def _quasi_identifiers(table: Table, quasi_identifiers: list[str] | None) -> list[str]:
    names = quasi_identifiers or table.schema.quasi_identifier_names
    if not names:
        raise AnonymityError("no quasi-identifier columns declared or named")
    return names


def equivalence_classes(table: Table,
                        quasi_identifiers: list[str] | None = None,
                        ) -> dict[tuple, np.ndarray]:
    """Row indices grouped by identical quasi-identifier combinations."""
    names = _quasi_identifiers(table, quasi_identifiers)
    keys: dict[tuple, list[int]] = {}
    columns = table.columns(names)
    for row_index in range(table.n_rows):
        key = tuple(column[row_index] for column in columns)
        keys.setdefault(key, []).append(row_index)
    return {key: np.asarray(indices) for key, indices in keys.items()}


def k_anonymity_level(table: Table,
                      quasi_identifiers: list[str] | None = None) -> int:
    """The k actually achieved: the smallest equivalence-class size."""
    classes = equivalence_classes(table, quasi_identifiers)
    return min(len(indices) for indices in classes.values())


def l_diversity_level(table: Table, sensitive: str,
                      quasi_identifiers: list[str] | None = None) -> int:
    """Minimum number of distinct sensitive values per equivalence class."""
    classes = equivalence_classes(table, quasi_identifiers)
    values = table.column(sensitive)
    return min(
        len(np.unique(values[indices])) for indices in classes.values()
    )


def t_closeness_level(table: Table, sensitive: str,
                      quasi_identifiers: list[str] | None = None) -> float:
    """Worst total-variation distance between a class's sensitive
    distribution and the global one (a conservative stand-in for EMD on
    categorical attributes)."""
    classes = equivalence_classes(table, quasi_identifiers)
    values = table.column(sensitive)
    levels = np.unique(values)
    global_dist = np.array([np.mean(values == level) for level in levels])
    worst = 0.0
    for indices in classes.values():
        class_values = values[indices]
        class_dist = np.array([
            np.mean(class_values == level) for level in levels
        ])
        worst = max(worst, 0.5 * float(np.abs(class_dist - global_dist).sum()))
    return worst


@dataclass
class _Partition:
    indices: np.ndarray


class MondrianAnonymizer:
    """Multidimensional k-anonymity by greedy median partitioning.

    Recursively splits the table on the quasi-identifier with the widest
    normalised range, at the median, as long as both halves keep at least
    ``k`` rows.  Leaf partitions are generalised: numeric QIs become
    ``"lo-hi"`` range strings, categorical QIs become sorted value sets.
    """

    def __init__(self, k: int = 5):
        if k < 2:
            raise AnonymityError("k must be >= 2")
        self.k = k

    def anonymize(self, table: Table,
                  quasi_identifiers: list[str] | None = None) -> Table:
        """Return a generalised copy achieving k-anonymity on the QIs."""
        names = _quasi_identifiers(table, quasi_identifiers)
        if table.n_rows < self.k:
            raise AnonymityError(
                f"table has {table.n_rows} rows, cannot achieve k={self.k}"
            )
        numeric_names = [
            name for name in names
            if table.schema[name].ctype is ColumnType.NUMERIC
        ]
        spans = {}
        for name in numeric_names:
            values = table.column(name)
            spans[name] = max(float(values.max() - values.min()), 1e-12)

        partitions: list[np.ndarray] = []
        stack = [_Partition(np.arange(table.n_rows))]
        while stack:
            partition = stack.pop()
            split = self._try_split(table, partition.indices, names, spans)
            if split is None:
                partitions.append(partition.indices)
            else:
                stack.extend(split)

        generalized = {name: np.empty(table.n_rows, dtype=object) for name in names}
        for indices in partitions:
            for name in names:
                values = table.column(name)[indices]
                if table.schema[name].ctype is ColumnType.NUMERIC:
                    label = f"{values.min():.6g}..{values.max():.6g}"
                else:
                    label = "|".join(sorted(set(values.tolist())))
                generalized[name][indices] = label

        result = table
        for name in names:
            spec = table.schema[name]
            result = result.with_column(
                categorical(name, role=spec.role, description=spec.description),
                generalized[name],
            )
        return result

    def _try_split(self, table: Table, indices: np.ndarray,
                   names: list[str], spans: dict[str, float]):
        if len(indices) < 2 * self.k:
            return None
        # Rank QIs by normalised spread inside this partition.
        scored: list[tuple[float, str]] = []
        for name in names:
            values = table.column(name)[indices]
            if table.schema[name].ctype is ColumnType.NUMERIC:
                spread = float(values.max() - values.min()) / spans[name]
            else:
                spread = float(len(np.unique(values))) / max(table.n_rows, 1)
            scored.append((spread, name))
        scored.sort(reverse=True)
        for _, name in scored:
            values = table.column(name)[indices]
            if table.schema[name].ctype is ColumnType.NUMERIC:
                median = float(np.median(values))
                left = indices[values <= median]
                right = indices[values > median]
            else:
                levels = np.unique(values)
                if len(levels) < 2:
                    continue
                half = levels[:len(levels) // 2]
                mask = np.isin(values, half)
                left, right = indices[mask], indices[~mask]
            if len(left) >= self.k and len(right) >= self.k:
                return [_Partition(left), _Partition(right)]
        return None


def generalization_information_loss(original: Table, anonymized: Table,
                                    quasi_identifiers: list[str] | None = None,
                                    ) -> float:
    """Mean normalised width of the generalised numeric ranges (0 = lossless).

    Categorical QIs contribute the fraction of levels merged into the
    row's generalised set.
    """
    names = _quasi_identifiers(original, quasi_identifiers)
    losses = []
    for name in names:
        spec = original.schema[name]
        anonym_values = anonymized.column(name)
        if spec.ctype is ColumnType.NUMERIC:
            values = original.column(name)
            span = max(float(values.max() - values.min()), 1e-12)
            widths = []
            for label in anonym_values:
                low, separator, high = str(label).partition("..")
                if not separator:
                    widths.append(1.0)
                    continue
                try:
                    widths.append((float(high) - float(low)) / span)
                except ValueError:
                    widths.append(1.0)
            losses.append(float(np.mean(widths)))
        else:
            n_levels = len(original.unique(name))
            fractions = [
                len(str(label).split("|")) / n_levels for label in anonym_values
            ]
            losses.append(float(np.mean(fractions)))
    return float(np.mean(losses)) if losses else 0.0
