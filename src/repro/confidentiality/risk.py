"""Re-identification risk scoring (Q3).

Quick, attack-agnostic risk numbers for a table about to be shared:
uniqueness on quasi-identifiers is the dominant driver of linkage risk
(Sweeney's 87% result was exactly this).  The FACT auditor embeds these
scores in its confidentiality section.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.confidentiality.anonymity import equivalence_classes
from repro.data.table import Table


@dataclass(frozen=True)
class RiskProfile:
    """Uniqueness-based disclosure risk for one table."""

    quasi_identifiers: tuple[str, ...]
    n_rows: int
    n_classes: int
    k_anonymity: int
    unique_row_fraction: float
    mean_class_size: float
    journalist_risk: float

    @property
    def prosecutor_risk(self) -> float:
        """Worst-case re-identification probability: 1/k."""
        return 1.0 / self.k_anonymity if self.k_anonymity else 1.0

    def render(self) -> str:
        """Human-readable risk summary."""
        return (
            f"risk on QIs {list(self.quasi_identifiers)}: "
            f"k={self.k_anonymity}, unique rows {self.unique_row_fraction:.1%}, "
            f"prosecutor risk {self.prosecutor_risk:.3f}, "
            f"journalist risk {self.journalist_risk:.3f}"
        )


def assess_risk(table: Table,
                quasi_identifiers: list[str] | None = None) -> RiskProfile:
    """Compute a :class:`RiskProfile` for the table's quasi-identifiers.

    * ``unique_row_fraction`` — share of rows whose QI combination is
      unique in the table (each one a confident linkage target);
    * ``journalist_risk`` — expected re-identification probability for a
      uniformly random target: mean over rows of 1/(class size), which
      equals ``n_classes / n_rows``.
    """
    names = quasi_identifiers or table.schema.quasi_identifier_names
    classes = equivalence_classes(table, names)
    sizes = np.asarray([len(indices) for indices in classes.values()])
    n_rows = table.n_rows
    return RiskProfile(
        quasi_identifiers=tuple(names),
        n_rows=n_rows,
        n_classes=len(classes),
        k_anonymity=int(sizes.min()) if len(sizes) else 0,
        unique_row_fraction=(
            float(np.sum(sizes == 1)) / n_rows if n_rows else 0.0
        ),
        mean_class_size=float(sizes.mean()) if len(sizes) else 0.0,
        journalist_risk=len(classes) / n_rows if n_rows else 1.0,
    )


def risk_reduction(before: RiskProfile, after: RiskProfile) -> dict[str, float]:
    """How much an anonymisation step reduced each risk figure."""
    return {
        "prosecutor_risk": before.prosecutor_risk - after.prosecutor_risk,
        "journalist_risk": before.journalist_risk - after.journalist_risk,
        "unique_row_fraction": (
            before.unique_row_fraction - after.unique_row_fraction
        ),
    }
