"""Re-identification risk scoring (Q3).

Quick, attack-agnostic risk numbers for a table about to be shared:
uniqueness on quasi-identifiers is the dominant driver of linkage risk
(Sweeney's 87% result was exactly this).  The FACT auditor embeds these
scores in its confidentiality section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.confidentiality.anonymity import _quasi_identifiers
from repro.data.table import Table


@dataclass(frozen=True)
class RiskProfile:
    """Uniqueness-based disclosure risk for one table."""

    quasi_identifiers: tuple[str, ...]
    n_rows: int
    n_classes: int
    k_anonymity: int
    unique_row_fraction: float
    mean_class_size: float
    journalist_risk: float

    @property
    def prosecutor_risk(self) -> float:
        """Worst-case re-identification probability: 1/k."""
        return 1.0 / self.k_anonymity if self.k_anonymity else 1.0

    def render(self) -> str:
        """Human-readable risk summary."""
        return (
            f"risk on QIs {list(self.quasi_identifiers)}: "
            f"k={self.k_anonymity}, unique rows {self.unique_row_fraction:.1%}, "
            f"prosecutor risk {self.prosecutor_risk:.3f}, "
            f"journalist risk {self.journalist_risk:.3f}"
        )


def qi_class_counts(table: Table,
                    quasi_identifiers: list[str] | None = None,
                    ) -> tuple[dict[str, int], int]:
    """Equivalence-class sizes over the QI columns, as mergeable counts.

    Returns ``(counts, nan_singletons)``: ``counts`` maps an unambiguous
    string key of each quasi-identifier combination (length-prefixed
    pieces joined on a unit separator) to its row count, and
    ``nan_singletons`` is the number of rows carrying a NaN in any
    numeric QI — each of which is its *own* equivalence class (NaN never
    equals NaN, so no other row can link to it), counted separately
    because NaN admits no string key.

    The pair merges exactly across row-range shards: summing per-shard
    ``counts`` per key (:func:`repro.data.partition.merge_counts`) and
    adding the singleton tallies reproduces the whole-table classes —
    the sharded FACT audit's confidentiality path.  Grouping matches
    :func:`~repro.confidentiality.anonymity.equivalence_classes` (the
    key strings round-trip float ``repr``; ``-0.0`` is normalised to
    ``0.0`` to match ``==`` semantics), but runs vectorised.
    """
    names = _quasi_identifiers(table, quasi_identifiers)
    n_rows = table.n_rows
    if not n_rows:
        return {}, 0
    nan_mask = np.zeros(n_rows, dtype=bool)
    keys: np.ndarray | None = None
    for name in names:
        values = table.column(name)
        if values.dtype.kind == "f":
            nan_mask |= np.isnan(values)
            strings = (values + 0.0).astype("U32")
        else:
            strings = values.astype(str)
        lengths = np.char.str_len(strings).astype("U20")
        piece = np.char.add(np.char.add(lengths, "#"), strings)
        keys = piece if keys is None else np.char.add(
            np.char.add(keys, "\x1f"), piece
        )
    uniques, counts = np.unique(keys[~nan_mask], return_counts=True)
    return (
        {str(key): int(count) for key, count in zip(uniques, counts)},
        int(nan_mask.sum()),
    )


def risk_from_counts(quasi_identifiers, counts: Mapping[str, int],
                     nan_singletons: int = 0,
                     n_rows: int | None = None) -> RiskProfile:
    """A :class:`RiskProfile` from (merged) equivalence-class counts.

    The finalize half of the sharded confidentiality path: feed it the
    exact merge of per-shard :func:`qi_class_counts` results and it
    produces the same profile as :func:`assess_risk` on the whole table
    — every figure here is a pure function of the class-size multiset.
    """
    sizes = np.asarray(
        list(counts.values()) + [1] * int(nan_singletons), dtype=np.int64
    )
    if n_rows is None:
        n_rows = int(sizes.sum())
    n_classes = int(sizes.size)
    return RiskProfile(
        quasi_identifiers=tuple(quasi_identifiers),
        n_rows=n_rows,
        n_classes=n_classes,
        k_anonymity=int(sizes.min()) if n_classes else 0,
        unique_row_fraction=(
            float(np.sum(sizes == 1)) / n_rows if n_rows else 0.0
        ),
        mean_class_size=float(sizes.mean()) if n_classes else 0.0,
        journalist_risk=n_classes / n_rows if n_rows else 1.0,
    )


def assess_risk(table: Table,
                quasi_identifiers: list[str] | None = None) -> RiskProfile:
    """Compute a :class:`RiskProfile` for the table's quasi-identifiers.

    * ``unique_row_fraction`` — share of rows whose QI combination is
      unique in the table (each one a confident linkage target);
    * ``journalist_risk`` — expected re-identification probability for a
      uniformly random target: mean over rows of 1/(class size), which
      equals ``n_classes / n_rows``.
    """
    names = _quasi_identifiers(table, quasi_identifiers)
    counts, nan_singletons = qi_class_counts(table, names)
    return risk_from_counts(tuple(names), counts, nan_singletons,
                            n_rows=table.n_rows)


def risk_reduction(before: RiskProfile, after: RiskProfile) -> dict[str, float]:
    """How much an anonymisation step reduced each risk figure."""
    return {
        "prosecutor_risk": before.prosecutor_risk - after.prosecutor_risk,
        "journalist_risk": before.journalist_risk - after.journalist_risk,
        "unique_row_fraction": (
            before.unique_row_fraction - after.unique_row_fraction
        ),
    }
