"""Differentially private synthetic data (Q3).

"The goal should not be to prevent data from being distributed …, but to
exploit data in a safe and controlled manner."  The strongest form of
safe distribution is a synthetic table: sampled from DP-noised marginal
distributions, it can be shared freely (post-processing), while any
single real record's influence on it is ε-bounded.

The synthesiser is marginal-based with three structure modes:

* ``"target"`` (default when a TARGET column is declared) — release the
  label's DP marginal plus each feature's DP class-conditional
  histogram, then sample label-first.  A DP naive-Bayes generator: it
  preserves exactly the feature↔label dependence a downstream model
  needs.
* ``"chain"`` — each column conditioned on the previous one in schema
  order; preserves adjacent-column structure.
* ``"independent"`` — per-column marginals only.

Numeric columns are equi-width binned (values re-drawn uniformly inside
bins at decode time); low-cardinality numerics (flags, 0/1 targets) are
kept discrete so their exact values survive.
"""

from __future__ import annotations

import numpy as np

from repro.confidentiality.accountant import PrivacyAccountant
from repro.data.schema import ColumnType
from repro.data.table import Table
from repro.exceptions import DataError

MODES = ("target", "chain", "independent")


def _noisy_histogram(counts: np.ndarray, epsilon: float,
                     rng: np.random.Generator) -> np.ndarray:
    noisy = counts + rng.laplace(0.0, 1.0 / epsilon, size=counts.shape)
    noisy = np.maximum(noisy, 0.0)
    total = noisy.sum()
    if total <= 0:
        return np.full(counts.shape, 1.0 / counts.size)
    return noisy / total


class MarginalSynthesizer:
    """ε-DP synthetic tables from noisy (conditional) marginals.

    Parameters
    ----------
    epsilon:
        Total budget, split evenly across the released histograms.
    n_bins:
        Histogram bins per (high-cardinality) numeric column.
    mode:
        ``"target"``, ``"chain"``, ``"independent"``, or ``None`` to
        pick ``"target"`` when the table declares one, else ``"chain"``.
    """

    def __init__(self, epsilon: float, n_bins: int = 10,
                 mode: str | None = None,
                 accountant: PrivacyAccountant | None = None):
        if epsilon <= 0:
            raise DataError("epsilon must be positive")
        if n_bins < 2:
            raise DataError("n_bins must be >= 2")
        if mode is not None and mode not in MODES:
            raise DataError(f"mode must be one of {MODES}, got {mode!r}")
        self.epsilon = epsilon
        self.n_bins = n_bins
        self.mode = mode
        self.accountant = accountant
        self._resolved_mode: str = "chain"
        self._columns: list[str] = []
        self._anchor: str | None = None
        self._levels: dict[str, np.ndarray] = {}
        self._bin_edges: dict[str, np.ndarray] = {}
        self._marginal: dict[str, np.ndarray] = {}
        self._conditional: dict[str, np.ndarray] = {}
        self._schema = None

    # -- encoding helpers ------------------------------------------------------

    def _discretise(self, table: Table, name: str) -> np.ndarray:
        spec = table.schema[name]
        values = table.column(name)
        if spec.ctype is ColumnType.CATEGORICAL:
            levels = np.unique(values)
            self._levels[name] = levels
            index = {level: position for position, level in enumerate(levels)}
            return np.asarray([index[value] for value in values])
        distinct = np.unique(values)
        if len(distinct) <= self.n_bins:
            # Low-cardinality numerics (flags, 0/1 targets, counts) stay
            # discrete: decoding must reproduce the exact values.
            self._levels[name] = distinct
            index = {value: position for position, value in enumerate(distinct)}
            return np.asarray([index[value] for value in values])
        low, high = float(values.min()), float(values.max())
        if low == high:
            high = low + 1.0
        edges = np.linspace(low, high, self.n_bins + 1)
        self._bin_edges[name] = edges
        return np.clip(np.digitize(values, edges[1:-1]), 0, self.n_bins - 1)

    def _n_codes(self, name: str) -> int:
        if name in self._levels:
            return len(self._levels[name])
        return self.n_bins

    def _decode(self, name: str, codes: np.ndarray,
                rng: np.random.Generator):
        if name in self._levels:
            return self._levels[name][codes]
        edges = self._bin_edges[name]
        low = edges[codes]
        high = edges[codes + 1]
        return low + rng.random(len(codes)) * (high - low)

    # -- fit / sample --------------------------------------------------------------

    def fit(self, table: Table,
            rng: np.random.Generator) -> "MarginalSynthesizer":
        """Release the DP histograms the sampler will draw from."""
        if table.n_rows == 0:
            raise DataError("cannot synthesise from an empty table")
        self._schema = table.schema
        self._columns = list(table.column_names)
        self._resolved_mode = self.mode or (
            "target" if table.target_name is not None else "chain"
        )
        if self._resolved_mode == "target":
            self._anchor = table.target_name
            if self._anchor is None:
                raise DataError("mode='target' requires a declared TARGET column")
        codes = {
            name: self._discretise(table, name) for name in self._columns
        }
        per_release = self.epsilon / max(1, len(self._columns))
        if self.accountant is not None:
            self.accountant.spend(self.epsilon, label="marginal_synthesizer")

        if self._resolved_mode == "target":
            anchor = self._anchor
            anchor_counts = np.bincount(
                codes[anchor], minlength=self._n_codes(anchor)
            ).astype(np.float64)
            self._marginal[anchor] = _noisy_histogram(
                anchor_counts, per_release, rng
            )
            for name in self._columns:
                if name == anchor:
                    continue
                joint = np.zeros((self._n_codes(anchor), self._n_codes(name)))
                np.add.at(joint, (codes[anchor], codes[name]), 1.0)
                self._conditional[name] = np.vstack([
                    _noisy_histogram(row, per_release, rng) for row in joint
                ])
            return self

        first = self._columns[0]
        first_counts = np.bincount(
            codes[first], minlength=self._n_codes(first)
        ).astype(np.float64)
        self._marginal[first] = _noisy_histogram(first_counts, per_release, rng)
        for previous, current in zip(self._columns[:-1], self._columns[1:]):
            if self._resolved_mode == "chain":
                joint = np.zeros(
                    (self._n_codes(previous), self._n_codes(current))
                )
                np.add.at(joint, (codes[previous], codes[current]), 1.0)
                self._conditional[current] = np.vstack([
                    _noisy_histogram(row, per_release, rng) for row in joint
                ])
            else:
                counts = np.bincount(
                    codes[current], minlength=self._n_codes(current)
                ).astype(np.float64)
                self._marginal[current] = _noisy_histogram(
                    counts, per_release, rng
                )
        return self

    def _sample_conditional(self, name: str, parent_codes: np.ndarray,
                            rng: np.random.Generator) -> np.ndarray:
        conditional = self._conditional[name]
        draws = np.empty(len(parent_codes), dtype=np.intp)
        for code in np.unique(parent_codes):
            mask = parent_codes == code
            draws[mask] = rng.choice(
                conditional.shape[1], size=int(mask.sum()), p=conditional[code]
            )
        return draws

    def sample(self, n_rows: int, rng: np.random.Generator) -> Table:
        """Draw a synthetic table of ``n_rows`` (free post-processing)."""
        if self._schema is None:
            raise DataError("fit() must run before sample()")
        if n_rows <= 0:
            raise DataError("n_rows must be positive")
        sampled: dict[str, np.ndarray] = {}

        if self._resolved_mode == "target":
            anchor = self._anchor
            sampled[anchor] = rng.choice(
                self._n_codes(anchor), size=n_rows, p=self._marginal[anchor]
            )
            for name in self._columns:
                if name == anchor:
                    continue
                sampled[name] = self._sample_conditional(
                    name, sampled[anchor], rng
                )
        else:
            first = self._columns[0]
            sampled[first] = rng.choice(
                self._n_codes(first), size=n_rows, p=self._marginal[first]
            )
            for previous, current in zip(self._columns[:-1], self._columns[1:]):
                if self._resolved_mode == "chain":
                    sampled[current] = self._sample_conditional(
                        current, sampled[previous], rng
                    )
                else:
                    sampled[current] = rng.choice(
                        self._n_codes(current), size=n_rows,
                        p=self._marginal[current],
                    )
        data = {
            name: self._decode(name, sampled[name], rng)
            for name in self._columns
        }
        return Table(self._schema, data)


def marginal_total_variation(real: Table, synthetic: Table,
                             column: str, n_bins: int = 10) -> float:
    """TV distance between a column's real and synthetic distributions."""
    spec = real.schema[column]
    real_values = real.column(column)
    synth_values = synthetic.column(column)
    if spec.ctype is ColumnType.CATEGORICAL:
        levels = np.unique(np.concatenate([real_values, synth_values]))
        real_p = np.asarray([np.mean(real_values == level) for level in levels])
        synth_p = np.asarray([np.mean(synth_values == level) for level in levels])
    else:
        low = min(real_values.min(), synth_values.min())
        high = max(real_values.max(), synth_values.max())
        edges = np.linspace(low, high + 1e-9, n_bins + 1)
        real_p, _ = np.histogram(real_values, bins=edges)
        synth_p, _ = np.histogram(synth_values, bins=edges)
        real_p = real_p / max(real_p.sum(), 1)
        synth_p = synth_p / max(synth_p.sum(), 1)
    return 0.5 * float(np.abs(real_p - synth_p).sum())
