"""Pseudonymisation (Q3).

§2 names "polymorphic encryption and pseudonymization" as the security
half of the confidentiality question.  The pseudonymiser replaces
IDENTIFIER columns with keyed HMAC tokens: consistent within a key
(joins still work), unlinkable across keys (a new key issues a fresh
pseudonym universe — the practical core of "polymorphic" schemes), and
irreversible without the key.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro.data.schema import ColumnRole, categorical
from repro.data.table import Table
from repro.exceptions import DataError


class Pseudonymizer:
    """Keyed, deterministic identifier replacement.

    Parameters
    ----------
    key:
        Secret bytes; omit to generate a fresh random key (kept on the
        instance so the same run stays consistent).
    token_length:
        Hex characters retained per pseudonym (collisions become likely
        only beyond ~16^(length/2) identities).
    """

    def __init__(self, key: bytes | None = None, token_length: int = 16):
        if token_length < 8 or token_length > 64:
            raise DataError("token_length must be in [8, 64]")
        self._key = key if key is not None else secrets.token_bytes(32)
        self.token_length = token_length

    def pseudonym(self, value: object) -> str:
        """The stable token for one identifier value."""
        digest = hmac.new(
            self._key, str(value).encode("utf-8"), hashlib.sha256
        ).hexdigest()
        return f"p_{digest[:self.token_length]}"

    def pseudonymize_column(self, table: Table, name: str) -> Table:
        """Replace one column's values with pseudonyms (keeps the role)."""
        spec = table.schema[name]
        tokens = [self.pseudonym(value) for value in table.column(name)]
        return table.with_column(
            categorical(name, role=spec.role,
                        description=f"pseudonymized {spec.description or name}"),
            tokens,
        )

    def pseudonymize(self, table: Table,
                     columns: list[str] | None = None) -> Table:
        """Replace every IDENTIFIER column (or the named ones)."""
        names = columns or table.schema.identifier_names
        if not names:
            raise DataError("no identifier columns declared or named")
        result = table
        for name in names:
            result = self.pseudonymize_column(result, name)
        return result

    def rekeyed(self) -> "Pseudonymizer":
        """A new pseudonym universe: same data, unlinkable tokens."""
        return Pseudonymizer(key=secrets.token_bytes(32),
                             token_length=self.token_length)


def drop_identifiers(table: Table) -> Table:
    """Remove IDENTIFIER columns outright (the bluntest instrument)."""
    names = table.schema.identifier_names
    if not names:
        return table
    return table.drop(names)


def redact_for_release(table: Table,
                       pseudonymizer: Pseudonymizer | None = None) -> Table:
    """Standard release hygiene: pseudonymise identifiers, drop METADATA.

    METADATA columns hold generator oracles (ground-truth latents) that
    must never ship with a released dataset.
    """
    result = table
    metadata = [
        spec.name for spec in table.schema if spec.role is ColumnRole.METADATA
    ]
    if metadata:
        result = result.drop(metadata)
    if result.schema.identifier_names:
        worker = pseudonymizer or Pseudonymizer()
        result = worker.pseudonymize(result)
    return result
